// Package strategy is the pluggable routing/caching decision plane:
// the points where a node chooses *where to fetch a chunk from* and
// *what to keep in its cache* are expressed as interfaces, with the
// paper's CDI distance-vector routing and FIFO/LRU/LFU eviction as the
// default implementations and research alternatives (query-frequency
// route preference, BFR-style Bloom content advertisements,
// opportunistic cache placement) registered beside them.
//
// Strategies are selected by registry name (see registry.go) through
// core.Config.Routing / core.Config.Caching, `pds-sim -routing/-caching`
// and the `pds-bench compare` A/B matrix. The default strategies are
// pass-throughs: with Routing=="cdi" and Caching=="" the node behaves
// byte-identically to the pre-strategy code (pinned by the scenario
// golden rows).
//
// Determinism contract: strategies run inside the deterministic
// simulation, so every method must be a pure function of the calls it
// has observed — no wall clocks, no unseeded randomness, and no map
// iteration (the package is in pds-lint's determinism strict scope;
// ordered state lives in sorted slices). Strategies observe frozen
// wire messages and must never mutate them; retaining a frozen
// *bloom.Filter pointer for read-only lookups is allowed by the wire
// ownership rules.
package strategy

import (
	"time"

	"pds/internal/wire"
)

// Route is one candidate next hop for fetching a chunk: ask Neighbor,
// which reports the chunk Hop hops away from itself plus one. It
// mirrors the CDI table's lookup rows so default routing is a
// pass-through.
type Route struct {
	Neighbor wire.NodeID
	Hop      int
}

// RoutingEnv gives a routing strategy its node-side capabilities. All
// closures are bound to one node by core.NewNode and must only be
// called from that node's event context (the strategies are
// single-goroutine, like the rest of the node).
type RoutingEnv struct {
	// Self is the owning node's ID.
	Self wire.NodeID
	// CDIRoutes looks up the node's CDI distance-vector table: the
	// unexpired (neighbor, hop) rows for one chunk, sorted by neighbor.
	CDIRoutes func(itemKey string, chunkID int, now time.Duration) []Route
	// OwnedItemKeys lists the item keys of data this node holds payload
	// for, sorted. Advertisement-based strategies flood these.
	OwnedItemKeys func() []string
	// Flood broadcasts a strategy-originated query (e.g. a Bloom
	// advertisement) to all neighbors. The node stamps Sender/Origin,
	// registers the query for duplicate suppression and transmits with
	// the usual jitter.
	Flood func(q *wire.Query)
	// NewID draws a fresh globally-unique message ID from the node's
	// seeded RNG.
	NewID func() uint64
}

// RoutingCounters exposes per-strategy bookkeeping for traces, expvar
// and the bench matrix; zero-valued fields are meaningless for
// strategies that do not use them.
type RoutingCounters struct {
	// AdvertFloods counts content advertisements this node originated.
	AdvertFloods uint64
	// AdvertsHeld is the current size of the advertisement table.
	AdvertsHeld uint64
	// FreqEntries is the current size of the query-frequency table.
	FreqEntries uint64
	// RouteOverrides counts route selections the strategy changed away
	// from the raw CDI rows.
	RouteOverrides uint64
	// FallbackRoutes counts routes synthesized when the CDI table had
	// none (e.g. from Bloom advertisements).
	FallbackRoutes uint64
}

// Add accumulates rhs into c (for deployment-wide aggregation).
func (c *RoutingCounters) Add(rhs RoutingCounters) {
	c.AdvertFloods += rhs.AdvertFloods
	c.AdvertsHeld += rhs.AdvertsHeld
	c.FreqEntries += rhs.FreqEntries
	c.RouteOverrides += rhs.RouteOverrides
	c.FallbackRoutes += rhs.FallbackRoutes
}

// RoutingStrategy decides which neighbors a node asks for chunks. One
// instance exists per node; methods are invoked from the node's event
// context only.
type RoutingStrategy interface {
	// Name returns the registry name the strategy was built under.
	Name() string
	// SelectRoutes returns the candidate next hops for one chunk, to be
	// filtered (self/excluded/blacklisted) and fed to the assignment
	// balancer. The default implementation returns CDIRoutes verbatim.
	SelectRoutes(itemKey string, chunkID int, now time.Duration) []Route
	// ObserveQuery notes that a chunk/CDI query for itemKey arrived
	// from sender (frequency-driven strategies count these).
	ObserveQuery(itemKey string, sender wire.NodeID, now time.Duration)
	// ObserveCDI notes a CDI row learned from a response: chunkID of
	// itemKey is hop hops away via neighbor.
	ObserveCDI(itemKey string, chunkID, hop int, neighbor wire.NodeID)
	// ObserveAdvert processes a received content advertisement. q is
	// frozen: implementations must not mutate it (retaining q.Bloom for
	// read-only lookups is allowed).
	ObserveAdvert(q *wire.Query, now time.Duration)
	// OnPublish notes that this node now holds payload for itemKey.
	OnPublish(itemKey string, now time.Duration)
	// OnNeighborDown drops state learned via a neighbor the node has
	// declared dead (mirrors the CDI table's DropNeighborAll).
	OnNeighborDown(neighbor wire.NodeID)
	// Tick runs periodic maintenance from the node's housekeeping timer
	// (decay, re-advertisement, expiry).
	Tick(now time.Duration)
	// Reset drops all volatile state (node crash/restart).
	Reset()
	// Counters returns a snapshot of the strategy's bookkeeping.
	Counters() RoutingCounters
}

// CacheCounters exposes cache-strategy bookkeeping.
type CacheCounters struct {
	// AdmitSkips counts cacheable payloads the admission gate declined.
	AdmitSkips uint64
}

// Add accumulates rhs into c.
func (c *CacheCounters) Add(rhs CacheCounters) { c.AdmitSkips += rhs.AdmitSkips }

// CacheStrategy decides what a node's payload cache admits and evicts.
// The store owns the cache order slice (insertion order) and the byte
// budget; the strategy owns access recency/frequency state and the
// victim choice. One instance exists per node store.
type CacheStrategy interface {
	// Name returns the registry name the strategy was built under.
	Name() string
	// Admit reports whether a cacheable payload should be stored at
	// all. Declining is free diversity: other copies still exist
	// elsewhere on the reverse path. The defaults always admit.
	Admit(key string) bool
	// Touch records an access to a cached payload.
	Touch(key string)
	// Victim returns the index into order (the store's cache insertion
	// order, never empty) of the payload to evict next.
	Victim(order []string) int
	// Forget drops access state for an evicted or purged key.
	Forget(key string)
	// Reset drops all access state (crash/restart wipe).
	Reset()
	// Counters returns a snapshot of the strategy's bookkeeping.
	Counters() CacheCounters
}
