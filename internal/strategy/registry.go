package strategy

import (
	"fmt"
	"sort"

	"pds/internal/wire"
)

// Default strategy names: the paper's behavior.
const (
	DefaultRouting = "cdi"
	DefaultCaching = "fifo"
)

// The registries pair a lookup map with a sorted name slice so listing
// never iterates a map (determinism strict scope). Registration happens
// in init funcs only; no locking is needed.
var (
	routingFactories = map[string]func(*RoutingEnv) RoutingStrategy{}
	routingNames     []string

	cachingFactories = map[string]func(self wire.NodeID) CacheStrategy{}
	cachingNames     []string
)

// RegisterRouting adds a routing strategy factory under name. It
// panics on a duplicate name (registration is programmer error
// territory, caught at init).
func RegisterRouting(name string, factory func(*RoutingEnv) RoutingStrategy) {
	if _, dup := routingFactories[name]; dup {
		panic(fmt.Sprintf("strategy: duplicate routing strategy %q", name))
	}
	routingFactories[name] = factory
	routingNames = insertSorted(routingNames, name)
}

// RegisterCaching adds a cache strategy factory under name; panics on
// a duplicate.
func RegisterCaching(name string, factory func(self wire.NodeID) CacheStrategy) {
	if _, dup := cachingFactories[name]; dup {
		panic(fmt.Sprintf("strategy: duplicate cache strategy %q", name))
	}
	cachingFactories[name] = factory
	cachingNames = insertSorted(cachingNames, name)
}

func insertSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
	return names
}

// NewRouting builds the named routing strategy bound to env. The empty
// name selects the default (CDI pass-through).
func NewRouting(name string, env *RoutingEnv) (RoutingStrategy, error) {
	if name == "" {
		name = DefaultRouting
	}
	f, ok := routingFactories[name]
	if !ok {
		return nil, fmt.Errorf("unknown routing strategy %q (have %v)", name, RoutingNames())
	}
	return f(env), nil
}

// NewCaching builds the named cache strategy for the node self. The
// empty name selects the default (FIFO, always admit).
func NewCaching(name string, self wire.NodeID) (CacheStrategy, error) {
	if name == "" {
		name = DefaultCaching
	}
	f, ok := cachingFactories[name]
	if !ok {
		return nil, fmt.Errorf("unknown cache strategy %q (have %v)", name, CachingNames())
	}
	return f(self), nil
}

// RoutingNames lists the registered routing strategies, sorted.
func RoutingNames() []string { return append([]string(nil), routingNames...) }

// CachingNames lists the registered cache strategies, sorted.
func CachingNames() []string { return append([]string(nil), cachingNames...) }
