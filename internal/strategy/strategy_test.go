package strategy

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pds/internal/bloom"
	"pds/internal/wire"
)

// scriptedEnv is a deterministic stand-in for the node-side closures:
// a synthetic CDI table keyed on the item key prefix, a fixed owned-key
// list, a flood recorder and a counting ID source.
type scriptedEnv struct {
	env    *RoutingEnv
	floods []*wire.Query
}

func newScriptedEnv(self wire.NodeID) *scriptedEnv {
	se := &scriptedEnv{}
	nextID := uint64(100)
	se.env = &RoutingEnv{
		Self: self,
		CDIRoutes: func(itemKey string, _ int, _ time.Duration) []Route {
			// Fresh slices every call: strategies may prune in place,
			// exactly like the real CDI table's lookup copies.
			switch {
			case strings.HasPrefix(itemKey, "multi"):
				return []Route{{Neighbor: 2, Hop: 3}, {Neighbor: 4, Hop: 1}, {Neighbor: 6, Hop: 3}}
			case strings.HasPrefix(itemKey, "single"):
				return []Route{{Neighbor: 9, Hop: 2}}
			}
			return nil
		},
		OwnedItemKeys: func() []string { return []string{"item/a", "item/b"} },
		Flood:         func(q *wire.Query) { se.floods = append(se.floods, q) },
		NewID:         func() uint64 { nextID++; return nextID },
	}
	return se
}

// advert builds a frozen content advertisement as the node would
// deliver it: Sender is the relaying hop, Origin the producer, Round
// the hop distance travelled so far.
func advert(origin, sender wire.NodeID, round uint32, keys ...string) *wire.Query {
	f := bloom.NewForCapacity(uint64(len(keys)), bfrAdvertFPR, 42)
	for _, k := range keys {
		f.Add(k)
	}
	return &wire.Query{
		ID:       9000 + uint64(origin),
		Kind:     wire.KindAdvert,
		TTL:      bfrAdvertLifetime,
		Sender:   sender,
		Origin:   origin,
		Round:    round,
		HopsLeft: bfrAdvertScope,
		Bloom:    f,
	}
}

func TestRegistryDefaultsAndErrors(t *testing.T) {
	r, err := NewRouting("", newScriptedEnv(1).env)
	if err != nil || r.Name() != DefaultRouting {
		t.Fatalf("NewRouting(\"\") = %v, %v; want %q", r, err, DefaultRouting)
	}
	c, err := NewCaching("", 1)
	if err != nil || c.Name() != DefaultCaching {
		t.Fatalf("NewCaching(\"\") = %v, %v; want %q", c, err, DefaultCaching)
	}
	if _, err := NewRouting("bogus", newScriptedEnv(1).env); err == nil ||
		!strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), DefaultRouting) {
		t.Fatalf("unknown routing error = %v; want name and alternatives", err)
	}
	if _, err := NewCaching("bogus", 1); err == nil ||
		!strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), DefaultCaching) {
		t.Fatalf("unknown caching error = %v; want name and alternatives", err)
	}
}

func TestRegistryNamesSortedCopies(t *testing.T) {
	for _, names := range [][]string{RoutingNames(), CachingNames()} {
		if len(names) == 0 {
			t.Fatal("empty registry")
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("names not strictly sorted: %v", names)
			}
		}
	}
	// The returned slices are copies: scribbling on one must not leak
	// into the registry.
	RoutingNames()[0] = "zzz"
	if RoutingNames()[0] == "zzz" {
		t.Fatal("RoutingNames returned the registry's own slice")
	}
}

// TestEveryStrategyAnswersItsName pins the registry-name/Name()
// agreement the counters and bench labels rely on.
func TestEveryStrategyAnswersItsName(t *testing.T) {
	for _, name := range RoutingNames() {
		r, err := NewRouting(name, newScriptedEnv(1).env)
		if err != nil || r.Name() != name {
			t.Fatalf("NewRouting(%q).Name() = %v (err %v)", name, r, err)
		}
	}
	for _, name := range CachingNames() {
		c, err := NewCaching(name, 1)
		if err != nil || c.Name() != name {
			t.Fatalf("NewCaching(%q).Name() = %v (err %v)", name, c, err)
		}
	}
}

// routingTranscript drives one routing strategy through a fixed op
// sequence and serializes everything observable — selected routes,
// counters, floods — so two instances can be compared byte for byte.
func routingTranscript(s RoutingStrategy, se *scriptedEnv) string {
	var b strings.Builder
	logRoutes := func(tag string, routes []Route) {
		fmt.Fprintf(&b, "%s:%v\n", tag, routes)
	}
	s.OnPublish("item/a", 0)
	s.Tick(1 * time.Second)
	for i := 0; i < 5; i++ {
		s.ObserveQuery("multi/hot", 3, time.Duration(i)*time.Second)
	}
	s.ObserveCDI("multi/hot", 0, 2, 5)
	logRoutes("hot", s.SelectRoutes("multi/hot", 0, 10*time.Second))
	logRoutes("cold", s.SelectRoutes("multi/cold", 0, 10*time.Second))
	logRoutes("miss", s.SelectRoutes("nohit", 0, 10*time.Second))
	s.ObserveAdvert(advert(11, 2, 1, "nohit"), 11*time.Second)
	logRoutes("adv", s.SelectRoutes("nohit", 0, 12*time.Second))
	s.OnNeighborDown(2)
	logRoutes("down", s.SelectRoutes("nohit", 0, 13*time.Second))
	s.Tick(40 * time.Second)
	s.Tick(70 * time.Second)
	logRoutes("late", s.SelectRoutes("multi/hot", 0, 75*time.Second))
	fmt.Fprintf(&b, "counters:%+v floods:%d\n", s.Counters(), len(se.floods))
	s.Reset()
	fmt.Fprintf(&b, "reset:%+v\n", s.Counters())
	return b.String()
}

// TestRoutingDeterminism is the conformance gate every registered
// routing strategy must pass: two instances fed the identical call
// sequence produce identical routes, counters and flood counts. Any
// wall-clock read, unseeded randomness or map iteration in a strategy
// shows up here as a transcript mismatch.
func TestRoutingDeterminism(t *testing.T) {
	for _, name := range RoutingNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			seA, seB := newScriptedEnv(7), newScriptedEnv(7)
			a, err := NewRouting(name, seA.env)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := NewRouting(name, seB.env)
			ta, tb := routingTranscript(a, seA), routingTranscript(b, seB)
			if ta != tb {
				t.Fatalf("transcripts diverge:\n--- a ---\n%s--- b ---\n%s", ta, tb)
			}
		})
	}
}

func TestCDIRoutingIsPassThrough(t *testing.T) {
	se := newScriptedEnv(7)
	s, _ := NewRouting("cdi", se.env)
	got := s.SelectRoutes("multi/x", 0, time.Second)
	want := se.env.CDIRoutes("multi/x", 0, time.Second)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cdi routes = %v, want CDI table verbatim %v", got, want)
	}
	// The pass-through must not flood, count, or react to anything:
	// that is the byte-identity contract behind the golden rows.
	s.OnPublish("item/a", 0)
	s.Tick(time.Minute)
	s.ObserveAdvert(advert(11, 2, 1, "nohit"), time.Second)
	if len(se.floods) != 0 {
		t.Fatalf("cdi flooded %d queries", len(se.floods))
	}
	if c := s.Counters(); c != (RoutingCounters{}) {
		t.Fatalf("cdi counters = %+v, want zero", c)
	}
}

func TestQfreqHotPruningAndDecay(t *testing.T) {
	se := newScriptedEnv(7)
	s, _ := NewRouting("qfreq", se.env)

	// Below the hot threshold nothing changes.
	for i := 0; i < qfreqHotThreshold-1; i++ {
		s.ObserveQuery("multi/x", 3, 0)
	}
	if got := s.SelectRoutes("multi/x", 0, time.Second); len(got) != 3 {
		t.Fatalf("cold item pruned to %v", got)
	}
	// At the threshold, routes collapse to the minimum hop count.
	s.ObserveQuery("multi/x", 3, 0)
	got := s.SelectRoutes("multi/x", 0, time.Second)
	if len(got) != 1 || got[0] != (Route{Neighbor: 4, Hop: 1}) {
		t.Fatalf("hot item routes = %v, want the single hop-1 row", got)
	}
	if c := s.Counters(); c.RouteOverrides != 1 || c.FreqEntries != 1 {
		t.Fatalf("counters = %+v, want overrides=1 freq=1", c)
	}
	// Other items are untouched.
	if got := s.SelectRoutes("multi/other", 0, time.Second); len(got) != 3 {
		t.Fatalf("unrelated item pruned to %v", got)
	}

	// Decay halves the count each interval: 4 -> 2 -> 1 -> dropped.
	s.Tick(1 * qfreqDecayInterval)
	if got := s.SelectRoutes("multi/x", 0, time.Second); len(got) != 3 {
		t.Fatalf("decayed-below-threshold item still pruned: %v", got)
	}
	s.Tick(2 * qfreqDecayInterval)
	s.Tick(3 * qfreqDecayInterval)
	if c := s.Counters(); c.FreqEntries != 0 {
		t.Fatalf("freq entries after full decay = %d, want 0", c.FreqEntries)
	}
}

func TestBfrAdvertFlooding(t *testing.T) {
	se := newScriptedEnv(7)
	s, _ := NewRouting("bfr", se.env)

	// Nothing published yet: housekeeping stays silent.
	s.Tick(1 * time.Second)
	if len(se.floods) != 0 {
		t.Fatalf("unpublished node flooded %d adverts", len(se.floods))
	}
	// A publish marks the content dirty; the next tick floods.
	s.OnPublish("item/a", 2*time.Second)
	s.Tick(3 * time.Second)
	if len(se.floods) != 1 {
		t.Fatalf("floods after publish+tick = %d, want 1", len(se.floods))
	}
	q := se.floods[0]
	if q.Kind != wire.KindAdvert || q.Sender != 7 || q.Origin != 7 ||
		q.HopsLeft != bfrAdvertScope || q.Bloom == nil {
		t.Fatalf("advert shape wrong: %+v", q)
	}
	for _, k := range se.env.OwnedItemKeys() {
		if !q.Bloom.Contains(k) {
			t.Fatalf("advert filter misses owned key %q", k)
		}
	}
	// Steady state: no re-flood inside the interval, one after it.
	s.Tick(10 * time.Second)
	if len(se.floods) != 1 {
		t.Fatalf("re-flooded inside the advert interval: %d", len(se.floods))
	}
	s.Tick(3*time.Second + bfrAdvertInterval)
	if len(se.floods) != 2 {
		t.Fatalf("floods after interval lapse = %d, want 2", len(se.floods))
	}
	if c := s.Counters(); c.AdvertFloods != 2 {
		t.Fatalf("AdvertFloods = %d, want 2", c.AdvertFloods)
	}
}

func TestBfrFallbackRoutes(t *testing.T) {
	se := newScriptedEnv(7)
	se.env.OwnedItemKeys = func() []string { return nil } // pure consumer
	s, _ := NewRouting("bfr", se.env)

	adv := advert(11, 2, 1, "nohit")
	// Snapshot the frozen advert so mutation is detectable.
	before := fmt.Sprintf("%d/%d/%d/%d/%d/%v", adv.ID, adv.Sender, adv.Origin,
		adv.Round, adv.HopsLeft, adv.Bloom)
	s.ObserveAdvert(adv, 5*time.Second)

	// CDI has rows for "multi" keys: the table wins, no fallback.
	if got := s.SelectRoutes("multi/x", 0, 6*time.Second); len(got) != 3 {
		t.Fatalf("CDI-backed item overridden: %v", got)
	}
	// CDI-less key matching the advert filter: fallback via the advert
	// sender, hops = advert distance (Round+1).
	got := s.SelectRoutes("nohit", 0, 6*time.Second)
	if len(got) != 1 || got[0] != (Route{Neighbor: 2, Hop: 2}) {
		t.Fatalf("fallback routes = %v, want [{2 2}]", got)
	}
	if c := s.Counters(); c.FallbackRoutes != 1 || c.AdvertsHeld != 1 {
		t.Fatalf("counters = %+v, want fallbacks=1 held=1", c)
	}
	// The advert's own node never tables itself; non-matching keys miss.
	if got := s.SelectRoutes("unadvertised", 0, 6*time.Second); len(got) != 0 {
		t.Fatalf("non-advertised key routed: %v", got)
	}
	// Frozen-message contract: observing and routing left the advert
	// (including its Bloom) untouched.
	after := fmt.Sprintf("%d/%d/%d/%d/%d/%v", adv.ID, adv.Sender, adv.Origin,
		adv.Round, adv.HopsLeft, adv.Bloom)
	if before != after {
		t.Fatalf("advert mutated:\nbefore %s\nafter  %s", before, after)
	}

	// A nearer copy of the same origin replaces the row.
	s.ObserveAdvert(advert(11, 5, 0, "nohit"), 7*time.Second)
	if got := s.SelectRoutes("nohit", 0, 8*time.Second); len(got) != 1 || got[0] != (Route{Neighbor: 5, Hop: 1}) {
		t.Fatalf("nearer advert not preferred: %v", got)
	}
	// Losing the via-neighbor drops the row.
	s.OnNeighborDown(5)
	if got := s.SelectRoutes("nohit", 0, 9*time.Second); len(got) != 0 {
		t.Fatalf("routes via dead neighbor survived: %v", got)
	}
	if c := s.Counters(); c.AdvertsHeld != 0 {
		t.Fatalf("AdvertsHeld after neighbor down = %d, want 0", c.AdvertsHeld)
	}
}

func TestBfrAdvertExpiry(t *testing.T) {
	se := newScriptedEnv(7)
	se.env.OwnedItemKeys = func() []string { return nil }
	s, _ := NewRouting("bfr", se.env)
	s.ObserveAdvert(advert(11, 2, 0, "nohit"), 0)
	if got := s.SelectRoutes("nohit", 0, bfrAdvertLifetime-time.Second); len(got) != 1 {
		t.Fatalf("fresh advert unusable: %v", got)
	}
	if got := s.SelectRoutes("nohit", 0, bfrAdvertLifetime+time.Second); len(got) != 0 {
		t.Fatalf("expired advert still routing: %v", got)
	}
	s.Tick(bfrAdvertLifetime + time.Second)
	if c := s.Counters(); c.AdvertsHeld != 0 {
		t.Fatalf("tick kept expired advert: %+v", c)
	}
	// Self-originated adverts (echoes of our own flood) are ignored.
	s.ObserveAdvert(advert(7, 3, 0, "nohit"), 0)
	if c := s.Counters(); c.AdvertsHeld != 0 {
		t.Fatalf("self-advert tabled: %+v", c)
	}
}

func TestFifoCacheSemantics(t *testing.T) {
	c, _ := NewCaching("fifo", 1)
	for _, k := range []string{"a", "b", "c"} {
		if !c.Admit(k) {
			t.Fatalf("fifo declined %q", k)
		}
		c.Touch(k)
	}
	// FIFO always evicts the oldest insertion regardless of touches.
	if v := c.Victim([]string{"a", "b", "c"}); v != 0 {
		t.Fatalf("fifo victim = %d, want 0", v)
	}
	if got := c.Counters(); got != (CacheCounters{}) {
		t.Fatalf("fifo counters = %+v, want zero", got)
	}
}

func TestLRUCacheSemantics(t *testing.T) {
	c, _ := NewCaching("lru", 1)
	order := []string{"a", "b", "c"}
	c.Touch("a")
	c.Touch("b")
	// Never-accessed keys evict before any accessed key.
	if v := c.Victim(order); v != 2 {
		t.Fatalf("victim = %d (%q), want the never-accessed c", v, order[v])
	}
	c.Touch("c")
	if v := c.Victim(order); v != 0 {
		t.Fatalf("victim = %d, want the least-recently-used a", v)
	}
	c.Touch("a")
	if v := c.Victim(order); v != 1 {
		t.Fatalf("victim after re-touch = %d, want b", v)
	}
	// Forget returns a key to never-accessed (zero) state.
	c.Forget("c")
	if v := c.Victim(order); v != 2 {
		t.Fatalf("victim after forget = %d, want the forgotten c", v)
	}
	// Reset wipes everything: all-zero ties resolve to the earliest
	// insertion index.
	c.Reset()
	if v := c.Victim(order); v != 0 {
		t.Fatalf("victim after reset = %d, want 0", v)
	}
}

func TestLFUCacheSemantics(t *testing.T) {
	c, _ := NewCaching("lfu", 1)
	order := []string{"a", "b", "c"}
	for i := 0; i < 3; i++ {
		c.Touch("a")
	}
	c.Touch("b")
	c.Touch("c")
	c.Touch("c")
	if v := c.Victim(order); v != 1 {
		t.Fatalf("victim = %d, want the least-frequently-used b", v)
	}
	c.Touch("b")
	c.Touch("b")
	if v := c.Victim(order); v != 2 {
		t.Fatalf("victim = %d, want c after b overtakes it", v)
	}
}

func TestOpportunisticAdmissionDeterministic(t *testing.T) {
	a, _ := NewCaching("opportunistic", 5)
	b, _ := NewCaching("opportunistic", 5)
	other, _ := NewCaching("opportunistic", 6)
	admitted, diverged := 0, false
	const keys = 400
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("item/%d#%d", i%40, i/40)
		ra, rb := a.Admit(k), b.Admit(k)
		if ra != rb {
			t.Fatalf("same-node admission diverged on %q", k)
		}
		if ra != other.Admit(k) {
			diverged = true
		}
		if ra {
			admitted++
		}
	}
	if !diverged {
		t.Fatal("two nodes admitted identical key sets — no cache diversity")
	}
	// The admission hash splits keys roughly in half.
	if admitted < keys/4 || admitted > keys*3/4 {
		t.Fatalf("admitted %d of %d keys — admission badly skewed", admitted, keys)
	}
	if c := a.Counters(); c.AdmitSkips != uint64(keys-admitted) {
		t.Fatalf("AdmitSkips = %d, want %d", c.AdmitSkips, keys-admitted)
	}
}

// cachingTranscript mirrors routingTranscript for cache strategies.
func cachingTranscript(c CacheStrategy) string {
	var b strings.Builder
	order := []string{"k0", "k1", "k2", "k3"}
	for i := 0; i < 12; i++ {
		k := order[(i*5)%4]
		fmt.Fprintf(&b, "admit(%s):%v\n", k, c.Admit(k))
		c.Touch(k)
		fmt.Fprintf(&b, "victim:%d\n", c.Victim(order))
	}
	c.Forget("k1")
	fmt.Fprintf(&b, "after-forget:%d\n", c.Victim(order))
	c.Reset()
	fmt.Fprintf(&b, "after-reset:%d counters:%+v\n", c.Victim(order), c.Counters())
	return b.String()
}

func TestCachingDeterminism(t *testing.T) {
	for _, name := range CachingNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := NewCaching(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := NewCaching(name, 3)
			ta, tb := cachingTranscript(a), cachingTranscript(b)
			if ta != tb {
				t.Fatalf("transcripts diverge:\n--- a ---\n%s--- b ---\n%s", ta, tb)
			}
		})
	}
}
