package strategy

import (
	"sort"
	"time"

	"pds/internal/wire"
)

func init() {
	RegisterRouting("qfreq", func(env *RoutingEnv) RoutingStrategy {
		return &qfreqRouting{env: env}
	})
}

// Query-frequency tuning knobs. The decay halves every counter each
// interval, so an item needs sustained demand to stay hot (the
// "forwarding information updated by query frequency" idea of Tsai,
// arXiv:2106.11181, transplanted onto PDS's CDI plane).
const (
	qfreqDecayInterval = 30 * time.Second
	qfreqHotThreshold  = 4
)

// qfreqRouting counts chunk/CDI queries per item and, for items whose
// decayed count crosses the hot threshold, concentrates requests on the
// nearest replicas: the CDI rows are pruned to the minimum hop count,
// so a popular item is fetched over the shortest (cheapest, most
// cacheable) paths instead of being load-balanced across far copies.
// Cold items route exactly like the default.
//
// The frequency table is a pair of parallel slices sorted by item key —
// no map, so iteration order is inherently deterministic.
type qfreqRouting struct {
	env       *RoutingEnv
	keys      []string // sorted item keys
	counts    []uint32 // parallel decayed query counts
	lastDecay time.Duration
	overrides uint64
}

func (r *qfreqRouting) Name() string { return "qfreq" }

func (r *qfreqRouting) find(itemKey string) (int, bool) {
	i := sort.SearchStrings(r.keys, itemKey)
	return i, i < len(r.keys) && r.keys[i] == itemKey
}

func (r *qfreqRouting) ObserveQuery(itemKey string, _ wire.NodeID, _ time.Duration) {
	i, ok := r.find(itemKey)
	if ok {
		r.counts[i]++
		return
	}
	r.keys = append(r.keys, "")
	copy(r.keys[i+1:], r.keys[i:])
	r.keys[i] = itemKey
	r.counts = append(r.counts, 0)
	copy(r.counts[i+1:], r.counts[i:])
	r.counts[i] = 1
}

func (r *qfreqRouting) SelectRoutes(itemKey string, chunkID int, now time.Duration) []Route {
	routes := r.env.CDIRoutes(itemKey, chunkID, now)
	i, ok := r.find(itemKey)
	if !ok || r.counts[i] < qfreqHotThreshold || len(routes) < 2 {
		return routes
	}
	minHop := routes[0].Hop
	for _, rt := range routes[1:] {
		if rt.Hop < minHop {
			minHop = rt.Hop
		}
	}
	kept := routes[:0]
	for _, rt := range routes {
		if rt.Hop == minHop {
			kept = append(kept, rt)
		}
	}
	if len(kept) < len(routes) {
		r.overrides++
	}
	return kept
}

func (r *qfreqRouting) Tick(now time.Duration) {
	if now-r.lastDecay < qfreqDecayInterval {
		return
	}
	r.lastDecay = now
	keptKeys, keptCounts := r.keys[:0], r.counts[:0]
	for i, c := range r.counts {
		if c >>= 1; c > 0 {
			keptKeys = append(keptKeys, r.keys[i])
			keptCounts = append(keptCounts, c)
		}
	}
	r.keys, r.counts = keptKeys, keptCounts
}

func (r *qfreqRouting) Reset() {
	r.keys, r.counts = nil, nil
	r.lastDecay = 0
}

func (r *qfreqRouting) Counters() RoutingCounters {
	return RoutingCounters{
		FreqEntries:    uint64(len(r.keys)),
		RouteOverrides: r.overrides,
	}
}

func (r *qfreqRouting) ObserveCDI(string, int, int, wire.NodeID) {}
func (r *qfreqRouting) ObserveAdvert(*wire.Query, time.Duration) {}
func (r *qfreqRouting) OnPublish(string, time.Duration)          {}
func (r *qfreqRouting) OnNeighborDown(wire.NodeID)               {}
