package strategy

import (
	"time"

	"pds/internal/wire"
)

func init() {
	RegisterRouting(DefaultRouting, func(env *RoutingEnv) RoutingStrategy {
		return &cdiRouting{env: env}
	})
}

// cdiRouting is the paper's routing: chunk requests follow the CDI
// distance-vector table verbatim (§IV-A). Every method besides
// SelectRoutes is a no-op, so a node running "cdi" draws the same RNG
// sequence and sends the same messages as the pre-strategy code — the
// byte-identity anchor for the scenario golden rows.
type cdiRouting struct {
	env *RoutingEnv
}

func (r *cdiRouting) Name() string { return DefaultRouting }

func (r *cdiRouting) SelectRoutes(itemKey string, chunkID int, now time.Duration) []Route {
	return r.env.CDIRoutes(itemKey, chunkID, now)
}

func (r *cdiRouting) ObserveQuery(string, wire.NodeID, time.Duration) {}
func (r *cdiRouting) ObserveCDI(string, int, int, wire.NodeID)        {}
func (r *cdiRouting) ObserveAdvert(*wire.Query, time.Duration)        {}
func (r *cdiRouting) OnPublish(string, time.Duration)                 {}
func (r *cdiRouting) OnNeighborDown(wire.NodeID)                      {}
func (r *cdiRouting) Tick(time.Duration)                              {}
func (r *cdiRouting) Reset()                                          {}
func (r *cdiRouting) Counters() RoutingCounters                       { return RoutingCounters{} }
