package strategy

import (
	"sort"
	"time"

	"pds/internal/bloom"
	"pds/internal/wire"
)

func init() {
	RegisterRouting("bfr", func(env *RoutingEnv) RoutingStrategy {
		return &bfrRouting{env: env}
	})
}

// BFR tuning knobs (Marandi et al., "BFR: a Bloom Filter-based Routing
// Approach for Information-Centric Networks", arXiv:1702.00340, adapted
// to PDS: producers flood compact Bloom advertisements of their content
// and forwarders consult the advertisement table when the CDI
// distance-vector has no route).
const (
	// bfrAdvertInterval is the re-advertisement period; adverts also go
	// out promptly after a publish (next housekeeping tick).
	bfrAdvertInterval = 60 * time.Second
	// bfrAdvertLifetime is how long a received advert stays routable; it
	// spans two re-advertisement periods plus slack so one lost flood
	// does not blackhole an origin.
	bfrAdvertLifetime = 150 * time.Second
	// bfrAdvertScope bounds advert flood depth in hops.
	bfrAdvertScope = 8
	// bfrAdvertFPR sizes the advert filter.
	bfrAdvertFPR = 0.01
)

// bfrAdvert is one row of the content-advertisement table: origin's
// content filter is reachable via the neighbor it arrived from, dist
// hops away.
type bfrAdvert struct {
	origin   wire.NodeID
	via      wire.NodeID
	dist     int
	expireAt time.Duration
	// filter is the advert query's frozen Bloom, retained read-only per
	// the wire ownership rules.
	filter *bloom.Filter
}

// bfrRouting keeps an advertisement table sorted by origin (binary
// search, no map) and synthesizes fallback routes from it when the CDI
// table is empty — e.g. before any CDI round has completed, or after a
// crash wiped the distance vector.
type bfrRouting struct {
	env        *RoutingEnv
	adverts    []bfrAdvert // sorted by origin
	dirty      bool        // content changed since last advert
	advertised bool        // at least one advert flooded
	lastAdvert time.Duration
	floods     uint64
	fallbacks  uint64
}

func (r *bfrRouting) Name() string { return "bfr" }

func (r *bfrRouting) OnPublish(string, time.Duration) { r.dirty = true }

// Tick floods a fresh advertisement when content changed or the
// re-advertisement period lapsed, and expires stale advert rows.
func (r *bfrRouting) Tick(now time.Duration) {
	kept := r.adverts[:0]
	for _, a := range r.adverts {
		if a.expireAt > now {
			kept = append(kept, a)
		}
	}
	r.adverts = kept

	if !r.dirty && (!r.advertised || now-r.lastAdvert < bfrAdvertInterval) {
		return
	}
	keys := r.env.OwnedItemKeys()
	if len(keys) == 0 {
		r.dirty = false
		return
	}
	// Salt varies per flood so a key that false-positives in one advert
	// generation is unlikely to persist in the next.
	f := bloom.NewForCapacity(uint64(len(keys)), bfrAdvertFPR,
		uint64(r.env.Self)*0x9e3779b97f4a7c15+r.floods)
	for _, k := range keys {
		f.Add(k)
	}
	r.env.Flood(&wire.Query{
		ID:       r.env.NewID(),
		Kind:     wire.KindAdvert,
		TTL:      bfrAdvertLifetime,
		Sender:   r.env.Self,
		Origin:   r.env.Self,
		HopsLeft: bfrAdvertScope,
		Bloom:    f,
	})
	r.floods++
	r.dirty, r.advertised, r.lastAdvert = false, true, now
}

func (r *bfrRouting) findOrigin(origin wire.NodeID) (int, bool) {
	i := sort.Search(len(r.adverts), func(i int) bool { return r.adverts[i].origin >= origin })
	return i, i < len(r.adverts) && r.adverts[i].origin == origin
}

func (r *bfrRouting) ObserveAdvert(q *wire.Query, now time.Duration) {
	if q.Origin == r.env.Self || q.Bloom == nil {
		return
	}
	row := bfrAdvert{
		origin:   q.Origin,
		via:      q.Sender,
		dist:     int(q.Round) + 1,
		expireAt: now + bfrAdvertLifetime,
		filter:   q.Bloom,
	}
	i, ok := r.findOrigin(q.Origin)
	if !ok {
		r.adverts = append(r.adverts, bfrAdvert{})
		copy(r.adverts[i+1:], r.adverts[i:])
		r.adverts[i] = row
		return
	}
	// Keep the nearest copy of each origin's advert; a same-or-closer
	// arrival refreshes the filter and the lease, as does replacing an
	// expired row.
	if row.dist <= r.adverts[i].dist || r.adverts[i].expireAt <= now {
		r.adverts[i] = row
	}
}

func (r *bfrRouting) SelectRoutes(itemKey string, chunkID int, now time.Duration) []Route {
	routes := r.env.CDIRoutes(itemKey, chunkID, now)
	if len(routes) > 0 {
		return routes
	}
	var fallback []Route
	for _, a := range r.adverts {
		if a.expireAt <= now || !a.filter.Contains(itemKey) {
			continue
		}
		merged := false
		for j := range fallback {
			if fallback[j].Neighbor == a.via {
				if a.dist < fallback[j].Hop {
					fallback[j].Hop = a.dist
				}
				merged = true
				break
			}
		}
		if !merged {
			fallback = append(fallback, Route{Neighbor: a.via, Hop: a.dist})
		}
	}
	r.fallbacks += uint64(len(fallback))
	return fallback
}

func (r *bfrRouting) OnNeighborDown(nb wire.NodeID) {
	kept := r.adverts[:0]
	for _, a := range r.adverts {
		if a.via != nb {
			kept = append(kept, a)
		}
	}
	r.adverts = kept
}

func (r *bfrRouting) Reset() {
	r.adverts = nil
	r.dirty, r.advertised, r.lastAdvert = false, false, 0
}

func (r *bfrRouting) Counters() RoutingCounters {
	return RoutingCounters{
		AdvertFloods:   r.floods,
		AdvertsHeld:    uint64(len(r.adverts)),
		FallbackRoutes: r.fallbacks,
	}
}

func (r *bfrRouting) ObserveQuery(string, wire.NodeID, time.Duration) {}
func (r *bfrRouting) ObserveCDI(string, int, int, wire.NodeID)        {}
