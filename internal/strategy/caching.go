package strategy

import "pds/internal/wire"

func init() {
	RegisterCaching("fifo", func(wire.NodeID) CacheStrategy { return fifoCache{} })
	RegisterCaching("lru", func(wire.NodeID) CacheStrategy {
		return &accessCache{name: "lru", byRecency: true}
	})
	RegisterCaching("lfu", func(wire.NodeID) CacheStrategy {
		return &accessCache{name: "lfu"}
	})
	RegisterCaching("opportunistic", func(self wire.NodeID) CacheStrategy {
		return &opportunisticCache{
			accessCache: accessCache{name: "opportunistic", byRecency: true},
			self:        self,
		}
	})
}

// fifoCache is the seed's default: admit everything, evict the oldest
// insertion. It keeps no per-key state at all, exactly like the
// pre-strategy EvictFIFO path (whose touch was an early return).
type fifoCache struct{}

func (fifoCache) Name() string            { return "fifo" }
func (fifoCache) Admit(string) bool       { return true }
func (fifoCache) Touch(string)            {}
func (fifoCache) Victim([]string) int     { return 0 }
func (fifoCache) Forget(string)           {}
func (fifoCache) Reset()                  {}
func (fifoCache) Counters() CacheCounters { return CacheCounters{} }

// accessCache reproduces the pre-strategy LRU/LFU accounting exactly:
// one logical clock, last-access and access-count maps both updated on
// every touch, victims scanned over the store's insertion order with
// never-accessed keys (map zero value) evicting first and ties won by
// the earliest insertion index.
type accessCache struct {
	name        string
	byRecency   bool // true: LRU (min last access); false: LFU (min count)
	clock       uint64
	lastAccess  map[string]uint64
	accessCount map[string]uint64
}

func (c *accessCache) Name() string      { return c.name }
func (c *accessCache) Admit(string) bool { return true }

func (c *accessCache) Touch(key string) {
	c.clock++
	if c.lastAccess == nil {
		c.lastAccess = make(map[string]uint64)
		c.accessCount = make(map[string]uint64)
	}
	c.lastAccess[key] = c.clock
	c.accessCount[key]++
}

func (c *accessCache) Victim(order []string) int {
	best, bestVal := 0, ^uint64(0)
	for i, key := range order {
		var v uint64
		if c.byRecency {
			v = c.lastAccess[key] // zero (never accessed) evicts first
		} else {
			v = c.accessCount[key]
		}
		if v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

func (c *accessCache) Forget(key string) {
	delete(c.lastAccess, key)
	delete(c.accessCount, key)
}

// Reset drops the access maps; the clock deliberately keeps counting,
// matching the pre-strategy WipeCached (which nilled the maps but left
// accessClock alone).
func (c *accessCache) Reset() {
	c.lastAccess, c.accessCount = nil, nil
}

func (c *accessCache) Counters() CacheCounters { return CacheCounters{} }

// opportunisticCache is the cache-placement variant: each node admits
// only a pseudorandom half of cacheable payloads, keyed by its own ID,
// so neighboring nodes keep *different* halves of the passing traffic
// and the neighborhood as a whole caches more distinct chunks than N
// identical caches would. Admitted payloads are managed LRU.
type opportunisticCache struct {
	accessCache
	self  wire.NodeID
	skips uint64
}

func (c *opportunisticCache) Admit(key string) bool {
	// FNV-1a over the key, perturbed by the node ID: deterministic,
	// uniform, and different per node.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	// Fold the node ID in and run a splitmix64 finalizer. The finisher
	// must be nonlinear in self: with a plain XOR-in, the decision-bit
	// difference between two nodes would be a constant, making their
	// admission sets either identical or exactly complementary.
	h ^= uint64(c.self) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h&1 == 0 {
		return true
	}
	c.skips++
	return false
}

func (c *opportunisticCache) Counters() CacheCounters {
	return CacheCounters{AdmitSkips: c.skips}
}
