package attr

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPredicateRelations(t *testing.T) {
	d := NewDescriptor().
		Set("s", String("hello")).
		Set("i", Int(10)).
		Set("f", Float(2.5)).
		Set("t", Time(time.Unix(100, 0)))
	tests := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"eq string hit", Eq("s", String("hello")), true},
		{"eq string miss", Eq("s", String("world")), false},
		{"eq missing attr", Eq("zz", String("x")), false},
		{"ne hit", Ne("s", String("world")), true},
		{"ne miss", Ne("s", String("hello")), false},
		{"ne missing attr is true", Ne("zz", String("x")), true},
		{"lt hit", Lt("i", Int(11)), true},
		{"lt miss equal", Lt("i", Int(10)), false},
		{"le hit equal", Le("i", Int(10)), true},
		{"gt hit", Gt("f", Float(2.0)), true},
		{"gt miss", Gt("f", Float(3.0)), false},
		{"ge hit equal", Ge("f", Float(2.5)), true},
		{"range inside", InRange("i", Int(5), Int(15)), true},
		{"range at low edge", InRange("i", Int(10), Int(15)), true},
		{"range at high edge", InRange("i", Int(5), Int(10)), true},
		{"range outside", InRange("i", Int(11), Int(15)), false},
		{"prefix hit", Prefix("s", "hel"), true},
		{"prefix miss", Prefix("s", "hex"), false},
		{"prefix non-string", Prefix("i", "1"), false},
		{"exists hit", Exists("t"), true},
		{"exists miss", Exists("zz"), false},
		{"time lt", Lt("t", Time(time.Unix(200, 0))), true},
		{"kind mismatch comparison", Lt("i", String("x")), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Match(d); got != tt.want {
				t.Fatalf("%s on %s = %v, want %v", tt.p, d, got, tt.want)
			}
		})
	}
}

func TestQueryConjunction(t *testing.T) {
	d := NewDescriptor().Set("a", Int(1)).Set("b", Int(2))
	q := NewQuery(Eq("a", Int(1)), Eq("b", Int(2)))
	if !q.Match(d) {
		t.Fatal("conjunction of true predicates failed")
	}
	q2 := q.And(Eq("a", Int(99)))
	if q2.Match(d) {
		t.Fatal("conjunction with false predicate matched")
	}
	if len(q.Predicates) != 2 {
		t.Fatal("And mutated the receiver")
	}
	if !NewQuery().Match(d) || !(Query{}).Match(d) {
		t.Fatal("empty query must match everything")
	}
	if !NewQuery().IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
}

func randomPredicate(rng *rand.Rand) Predicate {
	attrs := []string{"a0", "a1", "a2", "a3"}
	a := attrs[rng.Intn(len(attrs))]
	switch rng.Intn(9) {
	case 0:
		return Eq(a, randomValue(rng))
	case 1:
		return Ne(a, randomValue(rng))
	case 2:
		return Lt(a, randomValue(rng))
	case 3:
		return Le(a, randomValue(rng))
	case 4:
		return Gt(a, randomValue(rng))
	case 5:
		return Ge(a, randomValue(rng))
	case 6:
		lo := randomValue(rng)
		return InRange(a, lo, randomValue(rng))
	case 7:
		return Prefix(a, "p")
	default:
		return Exists(a)
	}
}

// TestQueryEncodeRoundTrip property-tests that queries survive the wire
// and match identically afterwards.
func TestQueryEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(5))
		for i := range preds {
			preds[i] = randomPredicate(rng)
		}
		q := NewQuery(preds...)
		buf := q.AppendBinary(nil)
		got, rest, err := DecodeQuery(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		// Behavioral equality: same verdict on random descriptors.
		for i := 0; i < 20; i++ {
			d := randomDescriptor(rng)
			if q.Match(d) != got.Match(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeQueryTruncated(t *testing.T) {
	q := NewQuery(Eq("a", String("x")), InRange("b", Int(1), Int(5)))
	buf := q.AppendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeQuery(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestQueryString(t *testing.T) {
	if got := NewQuery().String(); got != "(all)" {
		t.Fatalf("empty query String = %q", got)
	}
	q := NewQuery(Eq("a", Int(1)), Exists("b"))
	if got := q.String(); got != "a = 1 AND b exists" {
		t.Fatalf("String = %q", got)
	}
}
