package attr

import (
	"encoding/json"
	"fmt"
	"time"
)

// jsonValue is the wire-agnostic JSON form of a Value: a tagged union
// so integers, floats, strings and times round-trip without ambiguity.
type jsonValue struct {
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	// T is RFC 3339 with nanoseconds.
	T *string `json:"t,omitempty"`
}

// MarshalJSON encodes the value as a tagged union.
func (v Value) MarshalJSON() ([]byte, error) {
	var jv jsonValue
	switch v.kind {
	case KindString:
		jv.S = &v.s
	case KindInt:
		jv.I = &v.i
	case KindFloat:
		jv.F = &v.f
	case KindTime:
		t := time.Unix(0, v.i).UTC().Format(time.RFC3339Nano)
		jv.T = &t
	default:
		return nil, fmt.Errorf("attr: marshal invalid value")
	}
	return json.Marshal(jv)
}

// UnmarshalJSON decodes the tagged union produced by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	set := 0
	if jv.S != nil {
		*v = String(*jv.S)
		set++
	}
	if jv.I != nil {
		*v = Int(*jv.I)
		set++
	}
	if jv.F != nil {
		*v = Float(*jv.F)
		set++
	}
	if jv.T != nil {
		t, err := time.Parse(time.RFC3339Nano, *jv.T)
		if err != nil {
			return fmt.Errorf("attr: bad time value: %w", err)
		}
		*v = Time(t)
		set++
	}
	if set != 1 {
		return fmt.Errorf("attr: value union must set exactly one field, got %d", set)
	}
	return nil
}

// MarshalJSON encodes the descriptor as a flat attribute object.
func (d Descriptor) MarshalJSON() ([]byte, error) {
	out := make(map[string]Value, len(d.attrs))
	for k, v := range d.attrs {
		out[k] = v
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a descriptor from a flat attribute object.
func (d *Descriptor) UnmarshalJSON(data []byte) error {
	var attrs map[string]Value
	if err := json.Unmarshal(data, &attrs); err != nil {
		return err
	}
	if attrs == nil {
		attrs = make(map[string]Value)
	}
	*d = newDescriptor(attrs)
	return nil
}
