package attr

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	now := time.Unix(1600000000, 12345)
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"string", String("abc"), KindString},
		{"int", Int(-42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"time", Time(now), KindTime},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Fatalf("Kind() = %v, want %v", got, tt.kind)
			}
			if !tt.v.IsValid() {
				t.Fatal("IsValid() = false")
			}
		})
	}
	if (Value{}).IsValid() {
		t.Fatal("zero Value reports valid")
	}
}

func TestValuePayloads(t *testing.T) {
	if got := String("xy").StringVal(); got != "xy" {
		t.Fatalf("StringVal = %q", got)
	}
	if got := Int(-7).IntVal(); got != -7 {
		t.Fatalf("IntVal = %d", got)
	}
	if got := Float(2.25).FloatVal(); got != 2.25 {
		t.Fatalf("FloatVal = %v", got)
	}
	at := time.Unix(12, 34)
	if got := Time(at).TimeVal(); !got.Equal(at) {
		t.Fatalf("TimeVal = %v, want %v", got, at)
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // kinds differ
		{Float(1.5), Float(1.5), true},
		{Float(math.NaN()), Float(math.NaN()), false},
		{Time(time.Unix(5, 0)), Time(time.Unix(5, 0)), true},
		{Value{}, Value{}, true}, // both invalid compare equal
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Int(3), Int(2), 1, false},
		{String("a"), String("b"), -1, false},
		{String("b"), String("b"), 0, false},
		{Float(1.5), Float(0.5), 1, false},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1, false},
		{Int(1), String("1"), 0, true},
		{Float(math.NaN()), Float(1), 0, true},
		{Value{}, Value{}, 0, true},
	}
	for _, tt := range tests {
		got, err := tt.a.Compare(tt.b)
		if (err != nil) != tt.wantErr {
			t.Errorf("%v.Compare(%v) err = %v, wantErr %v", tt.a, tt.b, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{String("hi"), `"hi"`},
		{Int(7), "7"},
		{Float(0.5), "0.5"},
		{Value{}, "<invalid>"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// randomValue draws an arbitrary valid value.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		return String(string(b))
	case 1:
		return Int(rng.Int63() - rng.Int63())
	case 2:
		return Float(rng.NormFloat64())
	default:
		return Time(time.Unix(rng.Int63n(1e9), rng.Int63n(1e9)))
	}
}

// TestValueEncodeRoundTrip checks decode(encode(v)) == v for arbitrary
// values.
func TestValueEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng)
		buf := v.appendBinary(nil)
		got, rest, err := decodeValue(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeValueTruncated(t *testing.T) {
	v := String("hello world")
	buf := v.appendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := decodeValue(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeValueUnknownKind(t *testing.T) {
	if _, _, err := decodeValue([]byte{0xEE, 1, 2}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestCompareAntisymmetric checks Compare(a,b) == -Compare(b,a) for
// same-kind values.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomValue(rng)
		b := randomValue(rng)
		if a.Kind() != b.Kind() {
			return true
		}
		ab, err1 := a.Compare(b)
		ba, err2 := b.Compare(a)
		if err1 != nil || err2 != nil {
			return reflect.DeepEqual(err1 == nil, err2 == nil)
		}
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
