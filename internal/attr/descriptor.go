package attr

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Well-known attribute names used by the PDS system itself. Applications
// are free to define additional attributes in their own namespaces.
const (
	AttrNamespace   = "namespace"
	AttrDataType    = "datatype"
	AttrName        = "name"
	AttrTime        = "time"
	AttrTotalChunks = "totalchunks"
	AttrChunkID     = "chunkid"
)

// Reserved values for system traffic (metadata discovery and CDI
// retrieval use the "system" namespace; see paper §III-A and §IV-A).
const (
	NamespaceSystem  = "system"
	DataTypeMetadata = "metadata"
	DataTypeCDI      = "cdi"
)

// Descriptor is the metadata describing one data item or chunk: a set of
// named attribute values. Descriptors are value types; the zero
// Descriptor is empty and matches nothing.
//
// A descriptor doubles as a metadata entry: its presence in a node's data
// store indicates the corresponding data item is (probably) available
// somewhere in the network (§II-C).
type Descriptor struct {
	attrs map[string]Value
	// key is the canonical form, computed eagerly at construction:
	// descriptors are immutable, and Key() sits on every hot path
	// (store indexing, Bloom tests, dedup), so it must be O(1).
	key string
}

// NewDescriptor returns an empty descriptor ready for Set calls.
func NewDescriptor() Descriptor {
	return Descriptor{attrs: make(map[string]Value)}
}

// Set returns a copy of d with the named attribute set to v. The original
// descriptor is not modified, so descriptors can be shared freely.
func (d Descriptor) Set(name string, v Value) Descriptor {
	out := make(map[string]Value, len(d.attrs)+1)
	for k, val := range d.attrs {
		out[k] = val
	}
	out[name] = v
	return newDescriptor(out)
}

// newDescriptor builds a descriptor around the attribute map, computing
// the canonical key once.
func newDescriptor(attrs map[string]Value) Descriptor {
	d := Descriptor{attrs: attrs}
	d.key = d.computeKey()
	return d
}

// Get returns the named attribute value and whether it is present.
func (d Descriptor) Get(name string) (Value, bool) {
	v, ok := d.attrs[name]
	return v, ok
}

// Len reports the number of attributes.
func (d Descriptor) Len() int { return len(d.attrs) }

// Names returns the attribute names in sorted order.
func (d Descriptor) Names() []string {
	names := make([]string, 0, len(d.attrs))
	for k := range d.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Namespace returns the namespace attribute, or "" when absent.
func (d Descriptor) Namespace() string {
	v, _ := d.Get(AttrNamespace)
	return v.StringVal()
}

// DataType returns the datatype attribute, or "" when absent.
func (d Descriptor) DataType() string {
	v, _ := d.Get(AttrDataType)
	return v.StringVal()
}

// Name returns the name attribute, or "" when absent.
func (d Descriptor) Name() string {
	v, _ := d.Get(AttrName)
	return v.StringVal()
}

// ChunkID returns the chunkid attribute and whether it is present. A
// descriptor with a chunk id describes one chunk of a larger item.
func (d Descriptor) ChunkID() (int, bool) {
	v, ok := d.Get(AttrChunkID)
	if !ok || v.Kind() != KindInt {
		return 0, false
	}
	return int(v.IntVal()), true
}

// TotalChunks returns the totalchunks attribute, or 0 when absent.
func (d Descriptor) TotalChunks() int {
	v, ok := d.Get(AttrTotalChunks)
	if !ok || v.Kind() != KindInt {
		return 0
	}
	return int(v.IntVal())
}

// WithChunk returns the descriptor of chunk id within the item described
// by d: the item descriptor with a chunkid attribute appended (§II-B).
func (d Descriptor) WithChunk(id int) Descriptor {
	return d.Set(AttrChunkID, Int(int64(id)))
}

// ItemDescriptor returns the descriptor with any chunkid attribute
// removed — i.e. the descriptor of the whole item a chunk belongs to.
func (d Descriptor) ItemDescriptor() Descriptor {
	if _, ok := d.attrs[AttrChunkID]; !ok {
		return d
	}
	out := make(map[string]Value, len(d.attrs)-1)
	for k, v := range d.attrs {
		if k != AttrChunkID {
			out[k] = v
		}
	}
	return newDescriptor(out)
}

// Equal reports whether two descriptors have identical attribute sets.
func (d Descriptor) Equal(o Descriptor) bool {
	if d.key != "" && o.key != "" {
		return d.key == o.key
	}
	if len(d.attrs) != len(o.attrs) {
		return false
	}
	for k, v := range d.attrs {
		ov, ok := o.attrs[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the descriptor: attributes in
// sorted name order with their binary-encoded values. Two descriptors
// have equal keys iff they are Equal. Keys index data stores, Bloom
// filters and response deduplication. The key is memoized at
// construction; Key is O(1) on any descriptor built through the public
// constructors.
func (d Descriptor) Key() string {
	if d.key != "" || len(d.attrs) == 0 {
		return d.key
	}
	return d.computeKey()
}

func (d Descriptor) computeKey() string {
	var b []byte
	for _, name := range d.Names() {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		b = d.attrs[name].appendBinary(b)
	}
	return string(b)
}

// String renders the descriptor for logs: {name=value, ...} sorted.
func (d Descriptor) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, name := range d.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", name, d.attrs[name])
	}
	sb.WriteByte('}')
	return sb.String()
}

// AppendBinary appends the canonical wire form: uvarint attribute count,
// then sorted (name, value) pairs. The pairs are exactly the memoized
// Key bytes, so for any descriptor built through the public
// constructors this is a single copy with no allocation — descriptors
// sit inside every response entry, so the encode path leans on this.
func (d Descriptor) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.attrs)))
	if d.key != "" || len(d.attrs) == 0 {
		return append(dst, d.key...)
	}
	for _, name := range d.Names() {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = d.attrs[name].appendBinary(dst)
	}
	return dst
}

// EncodedSize returns the number of bytes AppendBinary would write.
// Like AppendBinary it reads the memoized key, so the simulator can
// charge airtime per descriptor without serializing anything; the
// no-key fallback sums sizes analytically rather than encoding.
//
//pds:hotpath
func (d Descriptor) EncodedSize() int {
	n := uvarintLen(uint64(len(d.attrs)))
	if d.key != "" || len(d.attrs) == 0 {
		return n + len(d.key)
	}
	for _, name := range d.Names() {
		n += uvarintLen(uint64(len(name))) + len(name)
		n += d.attrs[name].encodedSize()
	}
	return n
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded length of v as a zig-zag varint.
func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// DecodeDescriptor decodes a descriptor encoded by AppendBinary and
// returns the remaining bytes.
func DecodeDescriptor(src []byte) (Descriptor, []byte, error) {
	n, used := binary.Uvarint(src)
	if used <= 0 {
		return Descriptor{}, nil, errTruncated
	}
	src = src[used:]
	// Every attribute costs at least two bytes; a count beyond that is
	// a malformed (or hostile) frame, and must not become a gigantic
	// allocation hint.
	if n > uint64(len(src))/2 {
		return Descriptor{}, nil, errTruncated
	}
	attrs := make(map[string]Value, n)
	for i := uint64(0); i < n; i++ {
		nameLen, used := binary.Uvarint(src)
		if used <= 0 || uint64(len(src)-used) < nameLen {
			return Descriptor{}, nil, errTruncated
		}
		name := string(src[used : used+int(nameLen)])
		src = src[used+int(nameLen):]
		var (
			v   Value
			err error
		)
		v, src, err = decodeValue(src)
		if err != nil {
			return Descriptor{}, nil, fmt.Errorf("descriptor attribute %q: %w", name, err)
		}
		attrs[name] = v
	}
	return newDescriptor(attrs), src, nil
}
