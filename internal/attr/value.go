// Package attr implements the data-description layer of PDS: typed
// attribute values, data descriptors (the metadata associated with every
// data item and chunk), and predicate-based queries over them.
//
// A data descriptor is an ordered set of named attributes, each holding a
// value of one primitive kind (string, int64, float64 or Unix time). A
// query is a conjunction of predicates, each relating one attribute to a
// value or value range. Matching a descriptor against a query is the core
// operation of both Peer Data Discovery and Peer Data Retrieval.
package attr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the primitive types an attribute value may take.
type Kind uint8

// Attribute value kinds. KindInvalid is deliberately the zero value so an
// uninitialized Value is detectably invalid.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindTime
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTime:
		return "time"
	default:
		return "invalid"
	}
}

// Value is a single typed attribute value. The zero Value is invalid.
type Value struct {
	kind Kind
	s    string
	i    int64 // also holds time as Unix nanoseconds
	f    float64
}

// String returns a Value holding a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns a Value holding a 64-bit integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a Value holding a 64-bit float.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Time returns a Value holding an instant, stored as Unix nanoseconds.
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.UnixNano()} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds one of the defined kinds.
func (v Value) IsValid() bool { return v.kind > KindInvalid && v.kind <= KindTime }

// StringVal returns the string payload. It is only meaningful for
// KindString values.
func (v Value) StringVal() string { return v.s }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.f }

// TimeVal returns the time payload. It is only meaningful for KindTime.
func (v Value) TimeVal() time.Time { return time.Unix(0, v.i) }

// Equal reports whether two values have the same kind and payload.
// Float values compare with ==, so NaN never equals anything.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindInt, KindTime:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	default:
		return true
	}
}

// Compare orders two values of the same kind: -1 if v < o, 0 if equal,
// +1 if v > o. It returns an error when the kinds differ or are not
// ordered (every defined kind is ordered; strings order lexically).
func (v Value) Compare(o Value) (int, error) {
	if v.kind != o.kind {
		return 0, fmt.Errorf("compare %s to %s: %w", v.kind, o.kind, ErrKindMismatch)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	case KindInt, KindTime:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1, nil
		case v.f > o.f:
			return 1, nil
		case v.f == o.f:
			return 0, nil
		}
		return 0, fmt.Errorf("compare NaN: %w", ErrKindMismatch)
	default:
		return 0, fmt.Errorf("compare invalid value: %w", ErrKindMismatch)
	}
}

// ErrKindMismatch is returned when an operation is applied to values of
// incompatible kinds.
var ErrKindMismatch = errors.New("attribute kind mismatch")

// GoString implements fmt.GoStringer for readable test failures.
func (v Value) GoString() string { return v.String() }

// String renders the value for logs and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.s)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindTime:
		return time.Unix(0, v.i).UTC().Format(time.RFC3339Nano)
	default:
		return "<invalid>"
	}
}

// appendBinary appends a canonical binary form of the value: kind byte,
// then a kind-specific payload. Strings are length-prefixed with uvarint.
func (v Value) appendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindInt, KindTime:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	}
	return dst
}

// encodedSize returns the number of bytes appendBinary would append.
//
//pds:hotpath
func (v Value) encodedSize() int {
	n := 1 // kind byte
	switch v.kind {
	case KindString:
		n += uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindInt, KindTime:
		n += varintLen(v.i)
	case KindFloat:
		n += 8
	}
	return n
}

// decodeValue decodes a value encoded by appendBinary and returns the
// remaining bytes.
func decodeValue(src []byte) (Value, []byte, error) {
	if len(src) == 0 {
		return Value{}, nil, errTruncated
	}
	k := Kind(src[0])
	src = src[1:]
	switch k {
	case KindString:
		n, used := binary.Uvarint(src)
		if used <= 0 || uint64(len(src)-used) < n {
			return Value{}, nil, errTruncated
		}
		s := string(src[used : used+int(n)])
		return String(s), src[used+int(n):], nil
	case KindInt, KindTime:
		i, used := binary.Varint(src)
		if used <= 0 {
			return Value{}, nil, errTruncated
		}
		return Value{kind: k, i: i}, src[used:], nil
	case KindFloat:
		if len(src) < 8 {
			return Value{}, nil, errTruncated
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(src))
		return Float(f), src[8:], nil
	default:
		return Value{}, nil, fmt.Errorf("decode value: unknown kind %d", k)
	}
}

var errTruncated = errors.New("attr: truncated encoding")
