package attr

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Relation enumerates the comparison operators a predicate may use
// against an attribute value (§II-C: "a relation (e.g. =, >, ∈, etc.)").
type Relation uint8

// Supported predicate relations.
const (
	RelEqual Relation = iota + 1
	RelNotEqual
	RelLess
	RelLessEqual
	RelGreater
	RelGreaterEqual
	RelInRange   // value ∈ [lo, hi]
	RelPrefix    // string attribute has the given prefix
	RelExists    // attribute is present, any value
	RelNotExists // attribute is absent
)

// String returns the operator spelling of the relation.
func (r Relation) String() string {
	switch r {
	case RelEqual:
		return "="
	case RelNotEqual:
		return "!="
	case RelLess:
		return "<"
	case RelLessEqual:
		return "<="
	case RelGreater:
		return ">"
	case RelGreaterEqual:
		return ">="
	case RelInRange:
		return "in"
	case RelPrefix:
		return "prefix"
	case RelExists:
		return "exists"
	case RelNotExists:
		return "absent"
	default:
		return fmt.Sprintf("rel(%d)", uint8(r))
	}
}

// Predicate constrains one attribute: the named attribute must relate to
// Value (and Hi, for RelInRange) as specified by Rel. A descriptor lacking
// the attribute fails every relation except RelNotEqual.
type Predicate struct {
	Attr  string
	Rel   Relation
	Value Value
	Hi    Value // upper bound, used only by RelInRange
}

// Eq returns an equality predicate.
func Eq(attr string, v Value) Predicate { return Predicate{Attr: attr, Rel: RelEqual, Value: v} }

// Ne returns an inequality predicate.
func Ne(attr string, v Value) Predicate { return Predicate{Attr: attr, Rel: RelNotEqual, Value: v} }

// Lt returns a less-than predicate.
func Lt(attr string, v Value) Predicate { return Predicate{Attr: attr, Rel: RelLess, Value: v} }

// Le returns a less-or-equal predicate.
func Le(attr string, v Value) Predicate { return Predicate{Attr: attr, Rel: RelLessEqual, Value: v} }

// Gt returns a greater-than predicate.
func Gt(attr string, v Value) Predicate { return Predicate{Attr: attr, Rel: RelGreater, Value: v} }

// Ge returns a greater-or-equal predicate.
func Ge(attr string, v Value) Predicate {
	return Predicate{Attr: attr, Rel: RelGreaterEqual, Value: v}
}

// InRange returns a closed-interval membership predicate lo <= attr <= hi.
func InRange(attr string, lo, hi Value) Predicate {
	return Predicate{Attr: attr, Rel: RelInRange, Value: lo, Hi: hi}
}

// Prefix returns a string-prefix predicate.
func Prefix(attr, prefix string) Predicate {
	return Predicate{Attr: attr, Rel: RelPrefix, Value: String(prefix)}
}

// Exists returns a presence predicate.
func Exists(attr string) Predicate { return Predicate{Attr: attr, Rel: RelExists} }

// NotExists returns an absence predicate; NotExists(AttrChunkID)
// restricts discovery to item-level entries, skipping per-chunk ones.
func NotExists(attr string) Predicate { return Predicate{Attr: attr, Rel: RelNotExists} }

// Match reports whether the descriptor satisfies the predicate.
func (p Predicate) Match(d Descriptor) bool {
	v, ok := d.Get(p.Attr)
	switch p.Rel {
	case RelExists:
		return ok
	case RelNotExists:
		return !ok
	case RelNotEqual:
		if !ok {
			return true
		}
		return !v.Equal(p.Value)
	}
	if !ok {
		return false
	}
	switch p.Rel {
	case RelEqual:
		return v.Equal(p.Value)
	case RelPrefix:
		return v.Kind() == KindString && strings.HasPrefix(v.StringVal(), p.Value.StringVal())
	case RelInRange:
		lo, err := v.Compare(p.Value)
		if err != nil {
			return false
		}
		hi, err := v.Compare(p.Hi)
		if err != nil {
			return false
		}
		return lo >= 0 && hi <= 0
	default:
		c, err := v.Compare(p.Value)
		if err != nil {
			return false
		}
		switch p.Rel {
		case RelLess:
			return c < 0
		case RelLessEqual:
			return c <= 0
		case RelGreater:
			return c > 0
		case RelGreaterEqual:
			return c >= 0
		}
	}
	return false
}

// String renders the predicate for logs.
func (p Predicate) String() string {
	switch p.Rel {
	case RelExists:
		return fmt.Sprintf("%s exists", p.Attr)
	case RelNotExists:
		return fmt.Sprintf("%s absent", p.Attr)
	case RelInRange:
		return fmt.Sprintf("%s in [%s, %s]", p.Attr, p.Value, p.Hi)
	default:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Rel, p.Value)
	}
}

// appendBinary appends the wire form of the predicate.
func (p Predicate) appendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.Attr)))
	dst = append(dst, p.Attr...)
	dst = append(dst, byte(p.Rel))
	switch p.Rel {
	case RelExists, RelNotExists:
	case RelInRange:
		dst = p.Value.appendBinary(dst)
		dst = p.Hi.appendBinary(dst)
	default:
		dst = p.Value.appendBinary(dst)
	}
	return dst
}

// encodedSize returns the number of bytes appendBinary would append.
//
//pds:hotpath
func (p Predicate) encodedSize() int {
	n := uvarintLen(uint64(len(p.Attr))) + len(p.Attr) + 1 // name, rel
	switch p.Rel {
	case RelExists, RelNotExists:
	case RelInRange:
		n += p.Value.encodedSize() + p.Hi.encodedSize()
	default:
		n += p.Value.encodedSize()
	}
	return n
}

// decodePredicate decodes a predicate encoded by appendBinary.
func decodePredicate(src []byte) (Predicate, []byte, error) {
	nameLen, used := binary.Uvarint(src)
	if used <= 0 || uint64(len(src)-used) < nameLen+1 {
		return Predicate{}, nil, errTruncated
	}
	p := Predicate{Attr: string(src[used : used+int(nameLen)])}
	src = src[used+int(nameLen):]
	p.Rel = Relation(src[0])
	src = src[1:]
	var err error
	switch p.Rel {
	case RelExists, RelNotExists:
	case RelInRange:
		if p.Value, src, err = decodeValue(src); err != nil {
			return Predicate{}, nil, err
		}
		if p.Hi, src, err = decodeValue(src); err != nil {
			return Predicate{}, nil, err
		}
	default:
		if p.Value, src, err = decodeValue(src); err != nil {
			return Predicate{}, nil, err
		}
	}
	return p, src, nil
}

// Query is a conjunction of predicates specifying desired data (§II-C).
// The zero Query has no predicates and matches every descriptor.
type Query struct {
	Predicates []Predicate
}

// NewQuery returns a query over the given predicates.
func NewQuery(preds ...Predicate) Query { return Query{Predicates: preds} }

// And returns a copy of q with extra predicates appended.
func (q Query) And(preds ...Predicate) Query {
	out := make([]Predicate, 0, len(q.Predicates)+len(preds))
	out = append(out, q.Predicates...)
	out = append(out, preds...)
	return Query{Predicates: out}
}

// Match reports whether the descriptor satisfies every predicate.
func (q Query) Match(d Descriptor) bool {
	for _, p := range q.Predicates {
		if !p.Match(d) {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the query has no predicates (matches all).
func (q Query) IsEmpty() bool { return len(q.Predicates) == 0 }

// String renders the query for logs.
func (q Query) String() string {
	if q.IsEmpty() {
		return "(all)"
	}
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// AppendBinary appends the wire form: uvarint count then predicates.
func (q Query) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(q.Predicates)))
	for _, p := range q.Predicates {
		dst = p.appendBinary(dst)
	}
	return dst
}

// EncodedSize returns the number of bytes AppendBinary would append,
// without serializing; the simulator charges per-message airtime from
// it on every transmission.
//
//pds:hotpath
func (q Query) EncodedSize() int {
	n := uvarintLen(uint64(len(q.Predicates)))
	for _, p := range q.Predicates {
		n += p.encodedSize()
	}
	return n
}

// DecodeQuery decodes a query encoded by AppendBinary and returns the
// remaining bytes.
func DecodeQuery(src []byte) (Query, []byte, error) {
	n, used := binary.Uvarint(src)
	if used <= 0 {
		return Query{}, nil, errTruncated
	}
	src = src[used:]
	// Each predicate costs at least two bytes on the wire; reject
	// counts that cannot fit rather than trusting them as capacity.
	if n > uint64(len(src))/2 {
		return Query{}, nil, errTruncated
	}
	var q Query
	if n > 0 {
		q.Predicates = make([]Predicate, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var (
			p   Predicate
			err error
		)
		p, src, err = decodePredicate(src)
		if err != nil {
			return Query{}, nil, fmt.Errorf("query predicate %d: %w", i, err)
		}
		q.Predicates = append(q.Predicates, p)
	}
	return q, src, nil
}
