package attr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleDescriptor() Descriptor {
	return NewDescriptor().
		Set(AttrNamespace, String("env")).
		Set(AttrDataType, String("nox")).
		Set(AttrName, String("s1")).
		Set(AttrTime, Int(1600000000))
}

func TestDescriptorSetIsImmutable(t *testing.T) {
	d := sampleDescriptor()
	d2 := d.Set(AttrName, String("s2"))
	if v, _ := d.Get(AttrName); v.StringVal() != "s1" {
		t.Fatalf("original mutated: name=%v", v)
	}
	if v, _ := d2.Get(AttrName); v.StringVal() != "s2" {
		t.Fatalf("copy not updated: name=%v", v)
	}
}

func TestDescriptorAccessors(t *testing.T) {
	d := sampleDescriptor()
	if d.Namespace() != "env" || d.DataType() != "nox" || d.Name() != "s1" {
		t.Fatalf("accessors wrong: %s %s %s", d.Namespace(), d.DataType(), d.Name())
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	names := d.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if _, ok := d.Get("absent"); ok {
		t.Fatal("Get(absent) reported present")
	}
}

func TestChunkDescriptors(t *testing.T) {
	item := sampleDescriptor().Set(AttrTotalChunks, Int(4))
	if item.TotalChunks() != 4 {
		t.Fatalf("TotalChunks = %d", item.TotalChunks())
	}
	if _, ok := item.ChunkID(); ok {
		t.Fatal("item descriptor reports a chunk id")
	}
	c2 := item.WithChunk(2)
	id, ok := c2.ChunkID()
	if !ok || id != 2 {
		t.Fatalf("ChunkID = %d,%v", id, ok)
	}
	back := c2.ItemDescriptor()
	if !back.Equal(item) {
		t.Fatalf("ItemDescriptor() != item: %s vs %s", back, item)
	}
	// ItemDescriptor of a chunkless descriptor is itself.
	if !item.ItemDescriptor().Equal(item) {
		t.Fatal("ItemDescriptor of item changed it")
	}
}

func TestDescriptorKeyEquality(t *testing.T) {
	a := sampleDescriptor()
	b := NewDescriptor().
		Set(AttrTime, Int(1600000000)).
		Set(AttrName, String("s1")).
		Set(AttrDataType, String("nox")).
		Set(AttrNamespace, String("env"))
	if a.Key() != b.Key() {
		t.Fatal("same attributes in different insert order give different keys")
	}
	c := a.Set(AttrName, String("other"))
	if a.Key() == c.Key() {
		t.Fatal("different descriptors share a key")
	}
}

func randomDescriptor(rng *rand.Rand) Descriptor {
	d := NewDescriptor()
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("a%d", rng.Intn(8))
		d = d.Set(name, randomValue(rng))
	}
	return d
}

// TestDescriptorKeyInjective property-tests: equal keys iff Equal.
func TestDescriptorKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDescriptor(rng)
		b := randomDescriptor(rng)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDescriptorEncodeRoundTrip property-tests the codec.
func TestDescriptorEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDescriptor(rng)
		buf := d.AppendBinary(nil)
		if len(buf) != d.EncodedSize() {
			return false
		}
		got, rest, err := DecodeDescriptor(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDescriptorTruncated(t *testing.T) {
	buf := sampleDescriptor().AppendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeDescriptor(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDescriptorString(t *testing.T) {
	d := NewDescriptor().Set("b", Int(2)).Set("a", String("x"))
	want := `{a="x", b=2}`
	if got := d.String(); got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}
