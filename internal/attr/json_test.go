package attr

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unicode/utf8"
)

func TestValueJSONRoundTrip(t *testing.T) {
	values := []Value{
		String("hello"),
		String(""),
		Int(-42),
		Float(3.25),
		Time(time.Unix(1700000000, 123456789)),
	}
	for _, v := range values {
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(buf, &got); err != nil {
			t.Fatalf("unmarshal %s (%s): %v", v, buf, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %s -> %s -> %s", v, buf, got)
		}
	}
}

func TestValueJSONInvalid(t *testing.T) {
	if _, err := json.Marshal(Value{}); err == nil {
		t.Fatal("invalid value marshaled")
	}
	var v Value
	for _, bad := range []string{
		`{}`,                 // no field
		`{"i":1,"s":"x"}`,    // two fields
		`{"t":"not-a-time"}`, // bad time
		`{"i":"not-an-int"}`, // wrong type
	} {
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Fatalf("bad value %s accepted", bad)
		}
	}
}

func TestDescriptorJSONRoundTrip(t *testing.T) {
	d := sampleDescriptor().Set(AttrTotalChunks, Int(4))
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"namespace"`) {
		t.Fatalf("flat object expected, got %s", buf)
	}
	var got Descriptor
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatalf("round trip mismatch: %s vs %s", got, d)
	}
	// Key memoization must survive the JSON path.
	if got.Key() != d.Key() {
		t.Fatal("keys differ after JSON round trip")
	}
}

func TestDescriptorJSONQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDescriptor(rng)
		// JSON cannot represent NaN floats or invalid UTF-8 strings
		// (the binary codec can); skip those draws.
		for _, name := range d.Names() {
			v, _ := d.Get(name)
			if v.Kind() == KindFloat && v.FloatVal() != v.FloatVal() {
				return true
			}
			if v.Kind() == KindString && !utf8.ValidString(v.StringVal()) {
				return true
			}
		}
		buf, err := json.Marshal(d)
		if err != nil {
			return false
		}
		var got Descriptor
		if err := json.Unmarshal(buf, &got); err != nil {
			return false
		}
		return got.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorJSONNull(t *testing.T) {
	var d Descriptor
	if err := json.Unmarshal([]byte(`null`), &d); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("null decoded to %d attributes", d.Len())
	}
}
