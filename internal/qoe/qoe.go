// Package qoe models streaming quality of experience: an online
// playback state machine that converts segment-arrival times into the
// measures viewers feel — startup delay, stall (rebuffer) events and
// the rebuffer ratio — plus pooled per-segment latencies for tail
// percentiles.
//
// The model is the standard HLS player abstraction: segments play in
// index order at a fixed duration each; playback begins the moment
// segment 0 is ready; whenever the next segment is not ready by the
// time its predecessor finishes, the player stalls until it arrives.
// Everything is pure arithmetic on the caller's clock readings — the
// package never reads a clock or an RNG itself, so it is deterministic
// by construction and safe inside the simulation core.
package qoe

import (
	"time"

	"pds/internal/metrics"
)

// Stall is one rebuffer event: playback halted for Duration waiting for
// segment Segment, which arrived At.
type Stall struct {
	Segment  int
	At       time.Duration
	Duration time.Duration
}

// Playback is an online playback session over a fixed segment plan.
type Playback struct {
	segDur time.Duration
	total  int

	start   time.Duration // session start (viewer pressed play)
	readyAt []time.Duration
	ready   []bool
	next    int // next segment index to commit to the play-out buffer

	started bool
	startup time.Duration
	// pos is the clock time at which the player finishes everything
	// committed so far; committing segment k late (ready > pos) stalls
	// playback for the difference.
	pos        time.Duration
	stalls     []Stall
	stallTime  time.Duration
	playedSegs int
}

// NewPlayback starts a session of total segments of segDur each, with
// the viewer pressing play at start.
func NewPlayback(total int, segDur, start time.Duration) *Playback {
	return &Playback{
		segDur:  segDur,
		total:   total,
		start:   start,
		readyAt: make([]time.Duration, total),
		ready:   make([]bool, total),
		next:    0,
	}
}

// SegmentReady records that segment seg was fully retrieved at time at,
// and advances the playback head as far as the buffered segments allow.
// It returns the stalls this delivery resolved (playback resuming after
// waiting for a late segment) — at most one per call in practice, but
// returned as a slice so the caller can attribute each to its segment.
// Out-of-range and duplicate segments are ignored.
func (p *Playback) SegmentReady(seg int, at time.Duration) []Stall {
	if seg < 0 || seg >= p.total || p.ready[seg] {
		return nil
	}
	p.ready[seg] = true
	p.readyAt[seg] = at
	var resolved []Stall
	for p.next < p.total && p.ready[p.next] {
		r := p.readyAt[p.next]
		if !p.started {
			p.started = true
			p.startup = r - p.start
			p.pos = r + p.segDur
		} else if r > p.pos {
			s := Stall{Segment: p.next, At: r, Duration: r - p.pos}
			p.stalls = append(p.stalls, s)
			p.stallTime += s.Duration
			resolved = append(resolved, s)
			p.pos = r + p.segDur
		} else {
			p.pos += p.segDur
		}
		p.playedSegs++
		p.next++
	}
	return resolved
}

// Started reports whether playback has begun (segment 0 committed).
func (p *Playback) Started() bool { return p.started }

// Committed returns how many segments have been committed to playback.
func (p *Playback) Committed() int { return p.next }

// Report is the finalized session summary.
type Report struct {
	// StartupDelay is the wait from play-press to first frame; zero if
	// playback never started.
	StartupDelay time.Duration
	// Stalls are the rebuffer events in playback order.
	Stalls []Stall
	// StallTime is the total rebuffering time, including the tail wait
	// on segments that never arrived (charged at Finalize).
	StallTime time.Duration
	// PlayedTime is segment duration times segments actually played.
	PlayedTime time.Duration
	// RebufferRatio is StallTime / (StallTime + PlayedTime); 1 when
	// nothing ever played but the viewer waited.
	RebufferRatio float64
	// SegmentsPlayed and SegmentsMissed partition the plan: missed
	// segments were never committed by the end of the session.
	SegmentsPlayed int
	SegmentsMissed int
}

// Finalize closes the session at time end and computes the report. The
// tail wait — playback head parked at pos (or never started) while
// undelivered segments remain — counts as stall time up to end, the way
// a viewer staring at a spinner counts it.
func (p *Playback) Finalize(end time.Duration) Report {
	rep := Report{
		StartupDelay:   p.startup,
		Stalls:         p.stalls,
		StallTime:      p.stallTime,
		PlayedTime:     time.Duration(p.playedSegs) * p.segDur,
		SegmentsPlayed: p.playedSegs,
		SegmentsMissed: p.total - p.playedSegs,
	}
	if p.next < p.total {
		// Undelivered tail: the viewer waited from the end of committed
		// playback (or from the start, if nothing ever played) to end.
		from := p.start
		if p.started {
			from = p.pos
		}
		if end > from {
			rep.StallTime += end - from
		}
	}
	denom := rep.StallTime + rep.PlayedTime
	if denom > 0 {
		rep.RebufferRatio = float64(rep.StallTime) / float64(denom)
	}
	return rep
}

// Counters reduces the report plus a latency pool into the metrics row
// form. The caller supplies per-tier byte attribution separately.
func (r Report) Counters(lat *metrics.Pool) metrics.QoECounters {
	q := metrics.QoECounters{
		StartupDelay:   r.StartupDelay,
		Stalls:         uint64(len(r.Stalls)),
		StallTime:      r.StallTime,
		RebufferRatio:  r.RebufferRatio,
		DeadlineMisses: uint64(len(r.Stalls) + r.SegmentsMissed),
	}
	if lat != nil && lat.Len() > 0 {
		q.P50 = lat.PercentileDuration(0.50)
		q.P95 = lat.PercentileDuration(0.95)
		q.P99 = lat.PercentileDuration(0.99)
	}
	q.SyncSeconds()
	return q
}
