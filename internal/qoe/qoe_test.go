package qoe

import (
	"math"
	"testing"
	"time"

	"pds/internal/metrics"
)

const seg = 6 * time.Second

func TestSmoothPlayback(t *testing.T) {
	p := NewPlayback(3, seg, 0)
	// Segment 0 at t=2s, the rest always ahead of the playhead.
	if st := p.SegmentReady(0, 2*time.Second); len(st) != 0 {
		t.Fatalf("unexpected stalls: %v", st)
	}
	p.SegmentReady(1, 4*time.Second)
	p.SegmentReady(2, 6*time.Second)
	rep := p.Finalize(30 * time.Second)
	if rep.StartupDelay != 2*time.Second {
		t.Fatalf("startup = %v", rep.StartupDelay)
	}
	if len(rep.Stalls) != 0 || rep.StallTime != 0 || rep.RebufferRatio != 0 {
		t.Fatalf("smooth playback stalled: %+v", rep)
	}
	if rep.SegmentsPlayed != 3 || rep.SegmentsMissed != 0 {
		t.Fatalf("segments = %+v", rep)
	}
	if rep.PlayedTime != 18*time.Second {
		t.Fatalf("played = %v", rep.PlayedTime)
	}
}

func TestStallChargedOnLateSegment(t *testing.T) {
	p := NewPlayback(2, seg, 0)
	p.SegmentReady(0, 1*time.Second) // plays 1s..7s
	// Segment 1 arrives at 10s: 3s past the 7s deadline.
	st := p.SegmentReady(1, 10*time.Second)
	if len(st) != 1 || st[0].Segment != 1 || st[0].Duration != 3*time.Second {
		t.Fatalf("stall = %+v", st)
	}
	rep := p.Finalize(20 * time.Second)
	if rep.StallTime != 3*time.Second || len(rep.Stalls) != 1 {
		t.Fatalf("report stalls = %+v", rep)
	}
	want := float64(3*time.Second) / float64(3*time.Second+12*time.Second)
	if math.Abs(rep.RebufferRatio-want) > 1e-9 {
		t.Fatalf("rebuffer = %v want %v", rep.RebufferRatio, want)
	}
}

func TestOutOfOrderBuffering(t *testing.T) {
	p := NewPlayback(3, seg, 0)
	// 1 and 2 arrive before 0: they buffer, nothing plays.
	p.SegmentReady(2, 1*time.Second)
	p.SegmentReady(1, 2*time.Second)
	if p.Started() || p.Committed() != 0 {
		t.Fatalf("playback started before segment 0")
	}
	// 0 arrives: all three commit, no stall (1 and 2 were buffered).
	if st := p.SegmentReady(0, 5*time.Second); len(st) != 0 {
		t.Fatalf("buffered commit stalled: %v", st)
	}
	if p.Committed() != 3 {
		t.Fatalf("committed = %d", p.Committed())
	}
	rep := p.Finalize(60 * time.Second)
	if rep.StartupDelay != 5*time.Second || rep.StallTime != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMissingTailChargedAsStall(t *testing.T) {
	p := NewPlayback(3, seg, 0)
	p.SegmentReady(0, 2*time.Second) // plays 2s..8s
	rep := p.Finalize(20 * time.Second)
	if rep.SegmentsPlayed != 1 || rep.SegmentsMissed != 2 {
		t.Fatalf("segments = %+v", rep)
	}
	// Tail wait: playhead parked at 8s, session ends at 20s -> 12s stall.
	if rep.StallTime != 12*time.Second {
		t.Fatalf("tail stall = %v", rep.StallTime)
	}
}

func TestNothingArrived(t *testing.T) {
	p := NewPlayback(2, seg, 3*time.Second)
	rep := p.Finalize(13 * time.Second)
	if rep.StartupDelay != 0 || rep.SegmentsPlayed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.StallTime != 10*time.Second || rep.RebufferRatio != 1 {
		t.Fatalf("all-wait session: %+v", rep)
	}
}

func TestDuplicateAndOutOfRangeIgnored(t *testing.T) {
	p := NewPlayback(2, seg, 0)
	p.SegmentReady(0, time.Second)
	p.SegmentReady(0, 2*time.Second) // duplicate
	p.SegmentReady(5, time.Second)   // out of range
	p.SegmentReady(-1, time.Second)
	p.SegmentReady(1, 2*time.Second)
	rep := p.Finalize(20 * time.Second)
	if rep.SegmentsPlayed != 2 || rep.StallTime != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCounters(t *testing.T) {
	p := NewPlayback(2, seg, 0)
	p.SegmentReady(0, time.Second)
	p.SegmentReady(1, 12*time.Second) // 5s stall (deadline was 7s)
	rep := p.Finalize(20 * time.Second)
	var lat metrics.Pool
	lat.AddDuration(time.Second)
	lat.AddDuration(3 * time.Second)
	q := rep.Counters(&lat)
	if q.StartupDelay != time.Second || q.Stalls != 1 || q.StallTime != 5*time.Second {
		t.Fatalf("counters = %+v", q)
	}
	if q.DeadlineMisses != 1 {
		t.Fatalf("misses = %d", q.DeadlineMisses)
	}
	if q.P50 != 2*time.Second || q.P99 < 2900*time.Millisecond {
		t.Fatalf("percentiles = %+v", q)
	}
	if q.P99Sec == 0 {
		t.Fatalf("seconds mirror not synced")
	}
	if !q.Any() {
		t.Fatalf("counters should be Any")
	}
}
