// Package tracker is the rendezvous plane for deployments that span
// more than one broadcast domain: a TTL-heartbeat peer index served
// over a tiny UDP request/response protocol, and a client that fails
// over across several trackers and keeps serving a stale peer cache
// when every tracker is down — the degraded-but-alive behavior the
// tiered retrieval path builds on.
//
// The protocol is deliberately minimal: a node announces (id, address,
// ttl) and re-announces within the TTL to stay listed; a query returns
// every live peer with its address and announce age. Packets carry the
// same CRC32 framing discipline as the other real transports.
package tracker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"pds/internal/wire"
)

// Protocol ops.
const (
	OpAnnounce = 1 // node announces (id, addr, ttl)
	OpQuery    = 2 // node asks for the live peer list
	OpPeers    = 3 // server reply: live peers
	OpAck      = 4 // server reply: announce accepted
)

const (
	protoVersion = 1
	crcSize      = 4
	headerSize   = crcSize + 2 // crc, version, op

	// MaxPacket bounds tracker datagrams; a full reply with MaxPeers
	// maximal entries fits.
	MaxPacket = 64 << 10
	// MaxAddr bounds one announced address.
	MaxAddr = 256
	// MaxPeers bounds one reply's peer list.
	MaxPeers = 1024
)

var (
	errShort    = errors.New("tracker: packet too short")
	errChecksum = errors.New("tracker: packet checksum mismatch")
	errVersion  = errors.New("tracker: unknown protocol version")
	errOp       = errors.New("tracker: unknown op")
	errBounds   = errors.New("tracker: field out of bounds")
)

// Peer is one live index entry.
type Peer struct {
	ID wire.NodeID
	// Addr is the peer's face listen address as announced.
	Addr string
	// Age is how long ago the peer last announced (reply packets).
	Age time.Duration
}

// Packet is one protocol message, either direction.
type Packet struct {
	Op byte
	// Node and TTL and Addr are the announce fields (OpAnnounce).
	Node wire.NodeID
	TTL  time.Duration
	Addr string
	// Peers is the reply list (OpPeers).
	Peers []Peer
}

// Encode serializes a packet with its CRC framing.
func Encode(p *Packet) ([]byte, error) {
	out := make([]byte, headerSize, headerSize+16)
	out[crcSize] = protoVersion
	out[crcSize+1] = p.Op
	switch p.Op {
	case OpAnnounce:
		if len(p.Addr) > MaxAddr {
			return nil, errBounds
		}
		out = binary.BigEndian.AppendUint32(out, uint32(p.Node))
		out = binary.BigEndian.AppendUint32(out, clampMillis(p.TTL))
		out = binary.BigEndian.AppendUint16(out, uint16(len(p.Addr)))
		out = append(out, p.Addr...)
	case OpQuery, OpAck:
		// Empty body.
	case OpPeers:
		if len(p.Peers) > MaxPeers {
			return nil, errBounds
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(p.Peers)))
		for _, pe := range p.Peers {
			if len(pe.Addr) > MaxAddr {
				return nil, errBounds
			}
			out = binary.BigEndian.AppendUint32(out, uint32(pe.ID))
			out = binary.BigEndian.AppendUint32(out, clampMillis(pe.Age))
			out = binary.BigEndian.AppendUint16(out, uint16(len(pe.Addr)))
			out = append(out, pe.Addr...)
		}
	default:
		return nil, errOp
	}
	if len(out) > MaxPacket {
		return nil, errBounds
	}
	binary.BigEndian.PutUint32(out, crc32.ChecksumIEEE(out[crcSize:]))
	return out, nil
}

// Decode parses and validates a packet. It never panics on arbitrary
// input and never returns a packet from damaged bytes (fuzzed).
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < headerSize || len(buf) > MaxPacket {
		return nil, errShort
	}
	if binary.BigEndian.Uint32(buf) != crc32.ChecksumIEEE(buf[crcSize:]) {
		return nil, errChecksum
	}
	if buf[crcSize] != protoVersion {
		return nil, errVersion
	}
	p := &Packet{Op: buf[crcSize+1]}
	body := buf[headerSize:]
	switch p.Op {
	case OpAnnounce:
		if len(body) < 10 {
			return nil, errShort
		}
		p.Node = wire.NodeID(binary.BigEndian.Uint32(body))
		p.TTL = time.Duration(binary.BigEndian.Uint32(body[4:])) * time.Millisecond
		alen := int(binary.BigEndian.Uint16(body[8:]))
		if alen > MaxAddr || len(body) != 10+alen {
			return nil, errBounds
		}
		p.Addr = string(body[10 : 10+alen])
	case OpQuery, OpAck:
		if len(body) != 0 {
			return nil, errBounds
		}
	case OpPeers:
		if len(body) < 2 {
			return nil, errShort
		}
		n := int(binary.BigEndian.Uint16(body))
		if n > MaxPeers {
			return nil, errBounds
		}
		body = body[2:]
		p.Peers = make([]Peer, 0, min(n, 64))
		for i := 0; i < n; i++ {
			if len(body) < 10 {
				return nil, errShort
			}
			pe := Peer{
				ID:  wire.NodeID(binary.BigEndian.Uint32(body)),
				Age: time.Duration(binary.BigEndian.Uint32(body[4:])) * time.Millisecond,
			}
			alen := int(binary.BigEndian.Uint16(body[8:]))
			if alen > MaxAddr || len(body) < 10+alen {
				return nil, errBounds
			}
			pe.Addr = string(body[10 : 10+alen])
			body = body[10+alen:]
			p.Peers = append(p.Peers, pe)
		}
		if len(body) != 0 {
			return nil, errBounds
		}
	default:
		return nil, errOp
	}
	return p, nil
}

// clampMillis converts a duration to uint32 milliseconds, saturating.
func clampMillis(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		return 0
	}
	if ms > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// String renders the op name for diagnostics.
func OpName(op byte) string {
	switch op {
	case OpAnnounce:
		return "announce"
	case OpQuery:
		return "query"
	case OpPeers:
		return "peers"
	case OpAck:
		return "ack"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}
