package tracker

import (
	"strings"
	"testing"
	"time"
)

func TestPacketRoundTrip(t *testing.T) {
	cases := []*Packet{
		{Op: OpAnnounce, Node: 42, TTL: 30 * time.Second, Addr: "10.0.0.1:9755"},
		{Op: OpAnnounce, Node: 1, TTL: 0, Addr: ""},
		{Op: OpQuery},
		{Op: OpAck},
		{Op: OpPeers},
		{Op: OpPeers, Peers: []Peer{
			{ID: 1, Addr: "a:1", Age: time.Second},
			{ID: 2, Addr: "host.example:65535", Age: 90 * time.Minute},
		}},
	}
	for _, want := range cases {
		buf, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%s): %v", OpName(want.Op), err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%s): %v", OpName(want.Op), err)
		}
		if got.Op != want.Op || got.Node != want.Node || got.Addr != want.Addr {
			t.Fatalf("round trip %s: got %+v want %+v", OpName(want.Op), got, want)
		}
		if got.TTL != want.TTL {
			t.Fatalf("TTL: got %v want %v", got.TTL, want.TTL)
		}
		if len(got.Peers) != len(want.Peers) {
			t.Fatalf("peers: got %d want %d", len(got.Peers), len(want.Peers))
		}
		for i := range want.Peers {
			if got.Peers[i] != want.Peers[i] {
				t.Fatalf("peer %d: got %+v want %+v", i, got.Peers[i], want.Peers[i])
			}
		}
	}
}

func TestEncodeBounds(t *testing.T) {
	if _, err := Encode(&Packet{Op: OpAnnounce, Addr: strings.Repeat("x", MaxAddr+1)}); err == nil {
		t.Fatal("oversized addr accepted")
	}
	if _, err := Encode(&Packet{Op: OpPeers, Peers: make([]Peer, MaxPeers+1)}); err == nil {
		t.Fatal("oversized peer list accepted")
	}
	if _, err := Encode(&Packet{Op: 99}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	buf, err := Encode(&Packet{Op: OpAnnounce, Node: 7, TTL: time.Second, Addr: "x:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		dam := append([]byte(nil), buf...)
		dam[i] ^= 0xff
		if _, err := Decode(dam); err == nil {
			t.Fatalf("bit damage at %d accepted", i)
		}
	}
	if _, err := Decode(buf[:3]); err == nil {
		t.Fatal("short packet accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil packet accepted")
	}
}

func newTestServer(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", opts)
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerAnnounceQueryExpire(t *testing.T) {
	s := newTestServer(t, ServerOptions{})
	c := NewClient([]string{s.Addr().String()}, time.Second)

	if err := c.Announce(1, "10.0.0.1:9755", 200*time.Millisecond); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if err := c.Announce(2, "10.0.0.2:9755", 10*time.Second); err != nil {
		t.Fatalf("Announce: %v", err)
	}

	peers, stale, err := c.Lookup(2)
	if err != nil || stale {
		t.Fatalf("Lookup: peers=%v stale=%v err=%v", peers, stale, err)
	}
	if len(peers) != 1 || peers[0].ID != 1 || peers[0].Addr != "10.0.0.1:9755" {
		t.Fatalf("self not filtered or wrong list: %+v", peers)
	}

	// Node 1's TTL lapses; only node 2 must remain.
	time.Sleep(250 * time.Millisecond)
	peers, _, err = c.Lookup(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].ID != 2 {
		t.Fatalf("expired entry still listed: %+v", peers)
	}
	if s.Stats().Expired == 0 {
		t.Fatalf("expiry not counted: %+v", s.Stats())
	}
}

func TestServerRejectsPastMaxEntries(t *testing.T) {
	s := newTestServer(t, ServerOptions{MaxEntries: 2})
	c := NewClient([]string{s.Addr().String()}, time.Second)
	c.Announce(1, "a:1", time.Minute)
	c.Announce(2, "b:1", time.Minute)
	// The third node is rejected (no ack → request error), but the two
	// existing entries may still refresh.
	if err := c.Announce(3, "c:1", time.Minute); err == nil {
		t.Fatal("index-stuffing announce acked")
	}
	if err := c.Announce(1, "a:2", time.Minute); err != nil {
		t.Fatalf("refresh rejected: %v", err)
	}
	if n := s.PeerCount(); n != 2 {
		t.Fatalf("PeerCount = %d, want 2", n)
	}
}

func TestClientFailoverAndStaleCache(t *testing.T) {
	primary := newTestServer(t, ServerOptions{})
	secondary := newTestServer(t, ServerOptions{})

	// A dead address first, so the client must fail over.
	deadAddr := func() string {
		s := newTestServer(t, ServerOptions{})
		addr := s.Addr().String()
		s.Close()
		return addr
	}()

	c := NewClient([]string{primary.Addr().String(), secondary.Addr().String()}, 300*time.Millisecond)
	if err := c.Announce(9, "9:9", time.Minute); err != nil {
		t.Fatal(err)
	}
	// Announce went to primary only; seed secondary too so failover
	// still finds the peer.
	c2 := NewClient([]string{secondary.Addr().String()}, time.Second)
	if err := c2.Announce(9, "9:9", time.Minute); err != nil {
		t.Fatal(err)
	}

	// Kill primary: lookup must fail over to secondary, not go stale.
	primary.Close()
	peers, stale, err := c.Lookup(0)
	if err != nil || stale {
		t.Fatalf("failover lookup: stale=%v err=%v", stale, err)
	}
	if len(peers) != 1 || peers[0].ID != 9 {
		t.Fatalf("failover peers: %+v", peers)
	}
	if st := c.Stats(); st.Failovers == 0 {
		t.Fatalf("failover not counted: %+v", st)
	}

	// Kill secondary too: lookup must degrade to the stale cache.
	secondary.Close()
	peers, stale, err = c.Lookup(0)
	if err != nil {
		t.Fatalf("stale lookup errored: %v", err)
	}
	if !stale || len(peers) != 1 || peers[0].ID != 9 {
		t.Fatalf("stale serve wrong: stale=%v peers=%+v", stale, peers)
	}
	if st := c.Stats(); st.StaleServes == 0 {
		t.Fatalf("stale serve not counted: %+v", st)
	}

	// A fresh client with no cache and only dead trackers must fail.
	c3 := NewClient([]string{deadAddr}, 200*time.Millisecond)
	if _, _, err := c3.Lookup(0); err == nil {
		t.Fatal("lookup with no tracker and no cache succeeded")
	}
}

func TestStartHeartbeatKeepsEntryAlive(t *testing.T) {
	s := newTestServer(t, ServerOptions{})
	c := NewClient([]string{s.Addr().String()}, time.Second)
	stop := c.StartHeartbeat(4, "4:4", 300*time.Millisecond, 100*time.Millisecond)
	defer stop()

	// Well past the TTL, the heartbeat must have kept the entry live.
	time.Sleep(600 * time.Millisecond)
	peers, stale, err := c.Lookup(0)
	if err != nil || stale {
		t.Fatalf("lookup: stale=%v err=%v", stale, err)
	}
	if len(peers) != 1 || peers[0].ID != 4 {
		t.Fatalf("heartbeat entry gone: %+v", peers)
	}

	// After stop, the entry must expire.
	stop()
	stop() // idempotent
	time.Sleep(400 * time.Millisecond)
	if n := s.PeerCount(); n != 0 {
		t.Fatalf("entry survived heartbeat stop: %d peers", n)
	}
}

func FuzzDecode(f *testing.F) {
	for _, p := range []*Packet{
		{Op: OpAnnounce, Node: 42, TTL: 30 * time.Second, Addr: "10.0.0.1:9755"},
		{Op: OpQuery},
		{Op: OpAck},
		{Op: OpPeers, Peers: []Peer{{ID: 1, Addr: "a:1", Age: time.Second}}},
	} {
		buf, err := Encode(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, protoVersion, OpQuery})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// A decoded packet must satisfy the protocol bounds and
		// re-encode cleanly.
		if len(p.Addr) > MaxAddr || len(p.Peers) > MaxPeers {
			t.Fatalf("decoded packet out of bounds: %+v", p)
		}
		for _, pe := range p.Peers {
			if len(pe.Addr) > MaxAddr {
				t.Fatalf("peer addr out of bounds: %+v", pe)
			}
		}
		if _, err := Encode(p); err != nil {
			t.Fatalf("decoded packet does not re-encode: %v (%+v)", err, p)
		}
	})
}
