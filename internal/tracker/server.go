package tracker

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pds/internal/wire"
)

// ServerOptions tune a tracker server.
type ServerOptions struct {
	// DefaultTTL is applied to announces that carry no TTL; zero
	// selects 45s.
	DefaultTTL time.Duration
	// MaxEntries bounds the index; zero selects 4096. Announces past
	// the bound are rejected (counted), protecting the tracker from
	// index-stuffing.
	MaxEntries int
}

// ServerStats counts tracker activity.
type ServerStats struct {
	Announces  uint64
	Queries    uint64
	BadPackets uint64
	Expired    uint64
	Rejected   uint64
}

type indexEntry struct {
	addr      string
	announced time.Time
	expires   time.Time
}

// Server is a TTL-heartbeat peer index over UDP. Peers announce
// (id, addr, ttl) and must re-announce within the TTL to stay listed;
// queries return every live peer.
type Server struct {
	conn *net.UDPConn
	opts ServerOptions

	mu     sync.Mutex
	peers  map[wire.NodeID]*indexEntry
	stats  ServerStats
	closed bool

	wg sync.WaitGroup
}

// NewServer binds the UDP socket (e.g. "127.0.0.1:0" or ":9760") and
// starts serving.
func NewServer(listenAddr string, opts ServerOptions) (*Server, error) {
	if opts.DefaultTTL <= 0 {
		opts.DefaultTTL = 45 * time.Second
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tracker: listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("tracker: bind: %w", err)
	}
	s := &Server{conn: conn, opts: opts, peers: make(map[wire.NodeID]*indexEntry)}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// PeerCount returns how many unexpired entries the index holds.
func (s *Server) PeerCount() int {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.peers {
		if e.expires.After(now) {
			n++
		}
	}
	return n
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, MaxPacket)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		pkt, err := Decode(buf[:n])
		if err != nil {
			s.mu.Lock()
			s.stats.BadPackets++
			s.mu.Unlock()
			continue
		}
		// Build the reply under the lock, send it after releasing.
		var reply *Packet
		now := time.Now()
		s.mu.Lock()
		switch pkt.Op {
		case OpAnnounce:
			s.stats.Announces++
			s.pruneLocked(now)
			ttl := pkt.TTL
			if ttl <= 0 {
				ttl = s.opts.DefaultTTL
			}
			e := s.peers[pkt.Node]
			if e == nil {
				if len(s.peers) >= s.opts.MaxEntries {
					s.stats.Rejected++
					s.mu.Unlock()
					continue
				}
				e = &indexEntry{}
				s.peers[pkt.Node] = e
			}
			e.addr = pkt.Addr
			e.announced = now
			e.expires = now.Add(ttl)
			reply = &Packet{Op: OpAck}
		case OpQuery:
			s.stats.Queries++
			s.pruneLocked(now)
			reply = &Packet{Op: OpPeers, Peers: s.liveLocked(now)}
		default:
			s.stats.BadPackets++
		}
		s.mu.Unlock()
		if reply == nil {
			continue
		}
		out, err := Encode(reply)
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(out, from)
	}
}

// pruneLocked drops expired entries; callers hold s.mu.
func (s *Server) pruneLocked(now time.Time) {
	for id, e := range s.peers {
		if !e.expires.After(now) {
			delete(s.peers, id)
			s.stats.Expired++
		}
	}
}

// liveLocked snapshots the live entries sorted by node id; callers
// hold s.mu.
func (s *Server) liveLocked(now time.Time) []Peer {
	out := make([]Peer, 0, len(s.peers))
	for id, e := range s.peers {
		out = append(out, Peer{
			ID:   id,
			Addr: e.addr,
			Age:  now.Sub(e.announced),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) > MaxPeers {
		out = out[:MaxPeers]
	}
	return out
}
