package tracker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pds/internal/trace"
	"pds/internal/wire"
)

// ClientStats counts client-side tracker activity.
type ClientStats struct {
	Announces     uint64
	Lookups       uint64
	Failovers     uint64 // requests served by a non-active tracker
	StaleServes   uint64 // lookups served from the stale cache
	RequestErrors uint64 // individual tracker requests that failed
}

// ErrNoTracker is returned when every configured tracker is down and
// no cached peer list exists to degrade to.
var ErrNoTracker = errors.New("tracker: all trackers unreachable and no cached peers")

// Client talks to one or more trackers with failover: requests go to
// the active tracker first and rotate through the rest on timeout;
// when every tracker is down, Lookup degrades to the last good peer
// list (marked stale) instead of failing — retrieval keeps limping on
// yesterday's swarm rather than stopping.
type Client struct {
	addrs   []string
	timeout time.Duration

	mu      sync.Mutex
	active  int
	cache   []Peer
	cacheAt time.Time
	stats   ClientStats
	tr      *trace.NodeTracer

	hbMu   sync.Mutex
	hbStop chan struct{}
	hbWG   sync.WaitGroup
}

// NewClient returns a client over the tracker addresses, in priority
// order. timeout bounds one tracker request; zero selects 2s.
func NewClient(addrs []string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Client{addrs: append([]string(nil), addrs...), timeout: timeout}
}

// SetTracer attaches a node-bound tracer; nil disables tracing.
func (c *Client) SetTracer(nt *trace.NodeTracer) {
	c.mu.Lock()
	c.tr = nt
	c.mu.Unlock()
}

// Trackers returns the configured tracker addresses.
func (c *Client) Trackers() []string {
	return append([]string(nil), c.addrs...)
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Client) tracer() *trace.NodeTracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tr
}

// Announce registers (or refreshes) this node's face address with the
// tracker plane.
func (c *Client) Announce(self wire.NodeID, addr string, ttl time.Duration) error {
	c.mu.Lock()
	c.stats.Announces++
	c.mu.Unlock()
	_, _, err := c.request(&Packet{Op: OpAnnounce, Node: self, Addr: addr, TTL: ttl}, OpAck)
	return err
}

// Lookup returns the live peer list, excluding self. When every
// tracker is unreachable it serves the last good list with stale=true;
// ErrNoTracker is returned only when there is no cache to degrade to.
func (c *Client) Lookup(self wire.NodeID) (peers []Peer, stale bool, err error) {
	c.mu.Lock()
	c.stats.Lookups++
	c.mu.Unlock()
	reply, from, err := c.request(&Packet{Op: OpQuery}, OpPeers)
	if err == nil {
		peers = filterSelf(reply.Peers, self)
		c.mu.Lock()
		c.cache = append([]Peer(nil), peers...)
		c.cacheAt = time.Now()
		c.mu.Unlock()
		c.tracer().TrackerLookup(len(peers), false, from)
		return peers, false, nil
	}
	c.mu.Lock()
	cached := append([]Peer(nil), c.cache...)
	hasCache := c.cacheAt != (time.Time{})
	if hasCache {
		c.stats.StaleServes++
	}
	c.mu.Unlock()
	if !hasCache {
		return nil, false, fmt.Errorf("%w: %v", ErrNoTracker, err)
	}
	c.tracer().TrackerLookup(len(cached), true, "")
	return cached, true, nil
}

// request tries the active tracker first, then rotates through the
// rest; the first tracker that answers becomes active.
func (c *Client) request(pkt *Packet, wantOp byte) (*Packet, string, error) {
	if len(c.addrs) == 0 {
		return nil, "", errors.New("tracker: no tracker addresses configured")
	}
	out, err := Encode(pkt)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	start := c.active
	c.mu.Unlock()
	var lastErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (start + i) % len(c.addrs)
		addr := c.addrs[idx]
		reply, err := c.exchange(addr, out, wantOp)
		if err != nil {
			lastErr = err
			c.mu.Lock()
			c.stats.RequestErrors++
			c.mu.Unlock()
			continue
		}
		if idx != start {
			c.mu.Lock()
			c.active = idx
			c.stats.Failovers++
			c.mu.Unlock()
			c.tracer().TrackerFailover(addr)
		}
		return reply, addr, nil
	}
	return nil, "", lastErr
}

// exchange performs one UDP request/response with a deadline.
func (c *Client) exchange(addr string, out []byte, wantOp byte) (*Packet, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := conn.Write(out); err != nil {
		return nil, err
	}
	buf := make([]byte, MaxPacket)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	reply, err := Decode(buf[:n])
	if err != nil {
		return nil, err
	}
	if reply.Op != wantOp {
		return nil, fmt.Errorf("tracker: unexpected reply %s", OpName(reply.Op))
	}
	return reply, nil
}

// StartHeartbeat announces (self, addr) every interval with the given
// TTL until the returned stop function is called. Announce errors are
// absorbed — the failover and stale-cache paths handle tracker
// outages; the heartbeat just keeps trying.
func (c *Client) StartHeartbeat(self wire.NodeID, addr string, ttl, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 15 * time.Second
	}
	c.hbMu.Lock()
	if c.hbStop != nil {
		c.hbMu.Unlock()
		return func() {}
	}
	ch := make(chan struct{})
	c.hbStop = ch
	c.hbMu.Unlock()
	c.hbWG.Add(1)
	go func() {
		defer c.hbWG.Done()
		// First announce immediately so the node is discoverable
		// before the first tick.
		c.Announce(self, addr, ttl)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				c.Announce(self, addr, ttl)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(ch)
			c.hbWG.Wait()
			c.hbMu.Lock()
			c.hbStop = nil
			c.hbMu.Unlock()
		})
	}
}

func filterSelf(peers []Peer, self wire.NodeID) []Peer {
	out := peers[:0]
	for _, p := range peers {
		if p.ID != self {
			out = append(out, p)
		}
	}
	return out
}
