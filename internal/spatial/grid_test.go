package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naive is the obvious O(n) reference: a flat list of (id, x, y).
type naive struct {
	ids  []int32
	x, y map[int32]float64
}

func newNaive() *naive {
	return &naive{x: make(map[int32]float64), y: make(map[int32]float64)}
}

func (n *naive) insert(id int32, x, y float64) {
	n.ids = append(n.ids, id)
	n.x[id], n.y[id] = x, y
}

func (n *naive) remove(id int32) {
	for i, v := range n.ids {
		if v == id {
			n.ids = append(n.ids[:i], n.ids[i+1:]...)
			break
		}
	}
	delete(n.x, id)
	delete(n.y, id)
}

func (n *naive) inRange(x, y, r float64) []int32 {
	var out []int32
	for _, id := range n.ids {
		dx, dy := n.x[id]-x, n.y[id]-y
		if math.Hypot(dx, dy) <= r {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedInRange(g *Grid, x, y, r float64) []int32 {
	var out []int32
	g.VisitNeighborhood(x, y, func(id int32) {
		px, py := g.Position(id)
		if math.Hypot(px-x, py-y) <= r {
			out = append(out, id)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestGridMatchesNaive runs a randomized insert/move/remove workload
// and checks that every in-range query (radius <= cell size) agrees
// with the brute-force reference, including for points near cell
// boundaries and negative coordinates.
func TestGridMatchesNaive(t *testing.T) {
	const cell = 50.0
	rng := rand.New(rand.NewSource(42))
	g := NewGrid(cell)
	ref := newNaive()
	present := map[int32]bool{}
	var next int32

	pos := func() (float64, float64) {
		// Spread across negative and positive coordinates to cover
		// floor-division cell math.
		return rng.Float64()*800 - 400, rng.Float64()*800 - 400
	}

	for op := 0; op < 4000; op++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(present) == 0:
			x, y := pos()
			g.Insert(next, x, y)
			ref.insert(next, x, y)
			present[next] = true
			next++
		case r < 7:
			id := int32(rng.Intn(int(next)))
			if !present[id] {
				continue
			}
			x, y := pos()
			g.Move(id, x, y)
			ref.remove(id)
			ref.insert(id, x, y)
		case r < 8:
			id := int32(rng.Intn(int(next)))
			if !present[id] {
				continue
			}
			g.Remove(id)
			ref.remove(id)
			delete(present, id)
		default:
			x, y := pos()
			radius := rng.Float64() * cell
			got := sortedInRange(g, x, y, radius)
			want := ref.inRange(x, y, radius)
			if len(got) != len(want) {
				t.Fatalf("op %d: got %v, want %v", op, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: got %v, want %v", op, got, want)
				}
			}
		}
	}
	if g.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(present))
	}
}

func TestGridPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	g := NewGrid(10)
	g.Insert(3, 1, 1)
	expectPanic("duplicate insert", func() { g.Insert(3, 2, 2) })
	expectPanic("negative id", func() { g.Insert(-1, 0, 0) })
	expectPanic("remove absent", func() { g.Remove(7) })
	expectPanic("move absent", func() { g.Move(7, 0, 0) })
	expectPanic("zero cell", func() { NewGrid(0) })
}

func TestGridSameCellMoveKeepsSlot(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, 10, 10)
	g.Insert(1, 20, 20)
	g.Move(0, 30, 30) // same cell: must not reorder the bucket
	var order []int32
	g.VisitNeighborhood(15, 15, func(id int32) { order = append(order, id) })
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("bucket order %v, want [0 1]", order)
	}
	x, y := g.Position(0)
	if x != 30 || y != 30 {
		t.Fatalf("Position = (%v, %v)", x, y)
	}
}
