// Package spatial provides a uniform-grid spatial index for the radio
// medium. Nodes are dense int32 ids with planar positions; the grid
// buckets them into square cells so that "who is within radius r of
// point p" scans only the 3×3 cell neighborhood around p instead of
// every node — the change that takes city-scale neighbor queries from
// O(nodes) to O(local density).
//
// The cell edge must be at least the largest query radius: then every
// point within that radius of p lies in one of the nine cells around
// p's cell, so the neighborhood visit yields a superset of any in-range
// set and callers only distance-filter.
//
// Determinism contract (enforced by pds-lint's strict mode for this
// package): no code here ranges over a map. Cells are reached by
// computed key lookup, and the fixed dx/dy scan order plus append /
// swap-remove slice maintenance make the visit order a pure function of
// the operation history, which is itself seed-deterministic.
package spatial

import "math"

// Cell identifies a grid cell by its integer coordinates.
type Cell struct {
	X, Y int32
}

// Grid is a uniform-grid index over dense int32 ids. The zero value is
// not usable; construct with NewGrid. Not safe for concurrent use.
type Grid struct {
	inv   float64 // 1 / cell edge length
	cells map[Cell][]int32

	// Dense per-id state, indexed by id. A node's entry is live iff
	// slot[id] >= 0.
	px, py []float64
	home   []Cell
	slot   []int32 // index within cells[home[id]], or -1 when absent
}

// NewGrid returns a grid with the given cell edge length, which must be
// positive and at least the largest radius ever passed to in-range
// queries built on VisitNeighborhood.
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) {
		panic("spatial: cell size must be positive")
	}
	return &Grid{inv: 1 / cellSize, cells: make(map[Cell][]int32)}
}

// CellOf returns the cell containing the point.
func (g *Grid) CellOf(x, y float64) Cell {
	return Cell{
		X: int32(math.Floor(x * g.inv)),
		Y: int32(math.Floor(y * g.inv)),
	}
}

// grow extends the dense arrays to cover id.
func (g *Grid) grow(id int32) {
	for int32(len(g.slot)) <= id {
		g.px = append(g.px, 0)
		g.py = append(g.py, 0)
		g.home = append(g.home, Cell{})
		g.slot = append(g.slot, -1)
	}
}

// Contains reports whether id is currently indexed.
func (g *Grid) Contains(id int32) bool {
	return id >= 0 && id < int32(len(g.slot)) && g.slot[id] >= 0
}

// Position returns id's indexed position. id must be present.
func (g *Grid) Position(id int32) (x, y float64) {
	return g.px[id], g.py[id]
}

// Insert adds id at (x, y). It panics if id is negative or already
// present — a double insert means the caller's id allocation is broken.
func (g *Grid) Insert(id int32, x, y float64) {
	if id < 0 {
		panic("spatial: negative id")
	}
	g.grow(id)
	if g.slot[id] >= 0 {
		panic("spatial: duplicate insert")
	}
	g.px[id], g.py[id] = x, y
	c := g.CellOf(x, y)
	g.home[id] = c
	bucket := g.cells[c]
	g.slot[id] = int32(len(bucket))
	g.cells[c] = append(bucket, id)
}

// Remove deletes id from the index. It panics if id is absent.
func (g *Grid) Remove(id int32) {
	if !g.Contains(id) {
		panic("spatial: remove of absent id")
	}
	c := g.home[id]
	bucket := g.cells[c]
	i := g.slot[id]
	last := int32(len(bucket)) - 1
	moved := bucket[last]
	bucket[i] = moved
	g.slot[moved] = i
	bucket = bucket[:last]
	if len(bucket) == 0 {
		delete(g.cells, c)
	} else {
		g.cells[c] = bucket
	}
	g.slot[id] = -1
}

// Move updates id's position, re-homing it to a new cell only when the
// cell actually changes (the common same-cell case is two stores).
func (g *Grid) Move(id int32, x, y float64) {
	if !g.Contains(id) {
		panic("spatial: move of absent id")
	}
	g.px[id], g.py[id] = x, y
	c := g.CellOf(x, y)
	if c == g.home[id] {
		return
	}
	g.Remove(id)
	g.Insert(id, x, y)
}

// VisitNeighborhood calls fn for every id in the 3×3 cell block
// centered on the cell containing (x, y). Cells are scanned in fixed
// dx, dy order and each cell's bucket in slice order, so the sequence
// of callbacks is fully determined by the operation history. fn must
// not mutate the grid.
//
//pds:hotpath
func (g *Grid) VisitNeighborhood(x, y float64, fn func(id int32)) {
	c := g.CellOf(x, y)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			bucket := g.cells[Cell{X: c.X + dx, Y: c.Y + dy}]
			for _, id := range bucket {
				fn(id)
			}
		}
	}
}

// AppendNeighborhood appends the ids of the 3×3 cell block centered on
// the cell containing (x, y) to dst and returns it — the allocation-free
// form of VisitNeighborhood for hot query paths.
//
//pds:hotpath
func (g *Grid) AppendNeighborhood(x, y float64, dst []int32) []int32 {
	c := g.CellOf(x, y)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			dst = append(dst, g.cells[Cell{X: c.X + dx, Y: c.Y + dy}]...)
		}
	}
	return dst
}

// Len returns the number of indexed ids.
func (g *Grid) Len() int {
	n := 0
	for _, s := range g.slot {
		if s >= 0 {
			n++
		}
	}
	return n
}
