package origin

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"pds/internal/attr"
)

func chunkDesc(name string, chunk int) attr.Descriptor {
	return attr.NewDescriptor().
		Set(attr.AttrName, attr.String(name)).
		Set(attr.AttrChunkID, attr.Int(int64(chunk)))
}

func TestStaticBackend(t *testing.T) {
	s := NewStatic()
	d := chunkDesc("clip", 0)
	payload := []byte("chunk-zero")
	s.Put(d, payload)

	got, ok := s.GetPayload(d.Key())
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetPayload = %q, %v", got, ok)
	}
	// The backend must hand out copies, not its own buffer.
	got[0] = 'X'
	if again, _ := s.GetPayload(d.Key()); !bytes.Equal(again, payload) {
		t.Fatal("GetPayload returned a shared buffer")
	}
	if !s.HasPayload(d.Key()) {
		t.Fatal("HasPayload = false")
	}
	if _, ok := s.GetPayload("no-such-key"); ok {
		t.Fatal("phantom key served")
	}
	if s.Gets() != 3 {
		t.Fatalf("Gets = %d, want 3", s.Gets())
	}

	n := 0
	s.Restore(func(attr.Descriptor, []byte, bool, bool) { n++ })
	if n != 1 {
		t.Fatalf("Restore visited %d entries", n)
	}
	s.DeletePayload(d.Key())
	if s.HasPayload(d.Key()) {
		t.Fatal("payload survived delete")
	}
}

func TestHTTPOriginAgainstHandler(t *testing.T) {
	back := NewStatic()
	d := chunkDesc("clip", 1)
	payload := bytes.Repeat([]byte{7}, 4096)
	back.Put(d, payload)

	srv := httptest.NewServer(Handler(back))
	defer srv.Close()

	h := NewHTTP(srv.URL, time.Second)
	got, ok := h.GetPayload(d.Key())
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetPayload over HTTP: ok=%v len=%d", ok, len(got))
	}
	if !h.HasPayload(d.Key()) {
		t.Fatal("HasPayload over HTTP = false")
	}
	if _, ok := h.GetPayload("missing/key"); ok {
		t.Fatal("phantom key served over HTTP")
	}
	if h.HasPayload("missing/key") {
		t.Fatal("phantom HEAD succeeded")
	}

	// Origin is read-only from the node's perspective.
	if h.PutPayload(d, payload, false) {
		t.Fatal("HTTP origin accepted a write")
	}
}

func TestHTTPOriginDown(t *testing.T) {
	srv := httptest.NewServer(Handler(NewStatic()))
	addr := srv.URL
	srv.Close()
	h := NewHTTP(addr, 200*time.Millisecond)
	if _, ok := h.GetPayload("k"); ok {
		t.Fatal("dead origin served a payload")
	}
	if h.HasPayload("k") {
		t.Fatal("dead origin answered HEAD")
	}
}
