// Package origin provides origin-tier payload backends for the tiered
// retrieval path: when the P2P swarm and the tracker-learned edge
// peers cannot produce a chunk before the deadline, the node falls
// back to a publisher/origin copy (the graceful-degradation shape of
// opportunistic ICN search — Domingues et al., arXiv:1310.8258).
//
// Three pieces:
//
//   - HTTP: a read-only store.PayloadBackend over an HTTP(S) origin
//     (GET <base>/<url-escaped descriptor key>).
//   - Static: an in-memory read-mostly backend, for tests and demos.
//   - Handler: an http.Handler serving any store.PayloadBackend —
//     point it at a node's diskstore and that node is an origin
//     server.
//
// The diskstore backend already implements store.PayloadBackend, so a
// shared directory works as an origin without this package.
package origin

import (
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"pds/internal/attr"
	"pds/internal/store"
)

// MaxPayload bounds one origin response (guards against a
// misconfigured origin streaming forever into memory).
const MaxPayload = 64 << 20

// HTTP is a read-only store.PayloadBackend over an HTTP(S) origin.
// Write methods absorb silently (the origin is not ours to mutate),
// matching the backend contract of error-free methods.
type HTTP struct {
	base   string
	client *http.Client
}

var _ store.PayloadBackend = (*HTTP)(nil)

// NewHTTP returns a backend fetching from baseURL (e.g.
// "http://origin.example:8080/pds"). timeout bounds one fetch; zero
// selects 10s.
func NewHTTP(baseURL string, timeout time.Duration) *HTTP {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &HTTP{
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: timeout},
	}
}

func (h *HTTP) keyURL(key string) string {
	return h.base + "/" + url.PathEscape(key)
}

// GetPayload fetches the payload for key from the origin.
func (h *HTTP) GetPayload(key string) ([]byte, bool) {
	resp, err := h.client.Get(h.keyURL(key))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, MaxPayload+1))
	if err != nil || len(payload) > MaxPayload {
		return nil, false
	}
	return payload, true
}

// HasPayload probes the origin with a HEAD request.
func (h *HTTP) HasPayload(key string) bool {
	resp, err := h.client.Head(h.keyURL(key))
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// PutEntry is a no-op: the origin is read-only.
func (h *HTTP) PutEntry(attr.Descriptor) {}

// PutPayload reports false: nothing was durably stored here.
func (h *HTTP) PutPayload(attr.Descriptor, []byte, bool) bool { return false }

// DeletePayload is a no-op: the origin is read-only.
func (h *HTTP) DeletePayload(string) {}

// WipeCached is a no-op: the origin holds no volatile tier.
func (h *HTTP) WipeCached() {}

// Restore is a no-op: an HTTP origin cannot be enumerated.
func (h *HTTP) Restore(func(attr.Descriptor, []byte, bool, bool)) {}

// Static is an in-memory store.PayloadBackend: seed it with Put and
// hand it to the origin tier in tests and single-process demos. Safe
// for concurrent use.
type Static struct {
	mu      sync.Mutex
	records map[string]staticRecord
	gets    uint64
}

type staticRecord struct {
	desc    attr.Descriptor
	payload []byte
	owned   bool
}

var _ store.PayloadBackend = (*Static)(nil)

// NewStatic returns an empty in-memory origin.
func NewStatic() *Static {
	return &Static{records: make(map[string]staticRecord)}
}

// Put seeds one payload (stored as owned: origin copies are
// authoritative).
func (s *Static) Put(d attr.Descriptor, payload []byte) {
	s.PutPayload(d, payload, true)
}

// Gets returns how many GetPayload calls hit this origin.
func (s *Static) Gets() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets
}

func (s *Static) PutEntry(d attr.Descriptor) {
	s.mu.Lock()
	s.records[d.Key()] = staticRecord{desc: d, owned: true}
	s.mu.Unlock()
}

func (s *Static) PutPayload(d attr.Descriptor, payload []byte, owned bool) bool {
	s.mu.Lock()
	s.records[d.Key()] = staticRecord{desc: d, payload: append([]byte(nil), payload...), owned: owned}
	s.mu.Unlock()
	return true
}

func (s *Static) GetPayload(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	r, ok := s.records[key]
	if !ok || r.payload == nil {
		return nil, false
	}
	return append([]byte(nil), r.payload...), true
}

func (s *Static) HasPayload(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[key]
	return ok && r.payload != nil
}

func (s *Static) DeletePayload(key string) {
	s.mu.Lock()
	delete(s.records, key)
	s.mu.Unlock()
}

func (s *Static) WipeCached() {
	s.mu.Lock()
	for k, r := range s.records {
		if !r.owned {
			delete(s.records, k)
		}
	}
	s.mu.Unlock()
}

func (s *Static) Restore(fn func(d attr.Descriptor, payload []byte, hasPayload, owned bool)) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]staticRecord, len(keys))
	for i, k := range keys {
		recs[i] = s.records[k]
	}
	s.mu.Unlock()
	for _, r := range recs {
		fn(r.desc, r.payload, r.payload != nil, r.owned)
	}
}

// Handler serves a store.PayloadBackend over HTTP: GET and HEAD on
// /<url-escaped descriptor key>. Pair it with NewHTTP on the fetching
// side to turn any node's diskstore into an origin server.
func Handler(b store.PayloadBackend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/"))
		if err != nil || key == "" {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodHead:
			if !b.HasPayload(key) {
				http.NotFound(w, r)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodGet:
			payload, ok := b.GetPayload(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(payload)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
