package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func keys(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%06d", prefix, i)
	}
	return out
}

// TestNoFalseNegatives is the defining Bloom filter property: every
// inserted key must test positive.
func TestNoFalseNegatives(t *testing.T) {
	f := NewForCapacity(1000, 0.01, 42)
	in := keys(1000, "in")
	for _, k := range in {
		f.Add(k)
	}
	for _, k := range in {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

// TestFalsePositiveRate checks the FPR is near the configured target.
func TestFalsePositiveRate(t *testing.T) {
	const n = 5000
	f := NewForCapacity(n, 0.01, 7)
	for _, k := range keys(n, "in") {
		f.Add(k)
	}
	fp := 0
	probes := keys(20000, "out")
	for _, k := range probes {
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(len(probes))
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f > 0.03", rate)
	}
}

// TestSaltChangesFalsePositives verifies §V-3: an entry that is a false
// positive under one salt is almost never one under another, so
// per-round re-salting converges.
func TestSaltChangesFalsePositives(t *testing.T) {
	const n = 2000
	in := keys(n, "in")
	probes := keys(50000, "out")
	f1 := NewForCapacity(n, 0.02, 1)
	f2 := NewForCapacity(n, 0.02, 2)
	for _, k := range in {
		f1.Add(k)
		f2.Add(k)
	}
	both := 0
	one := 0
	for _, k := range probes {
		a, b := f1.Contains(k), f2.Contains(k)
		if a || b {
			one++
		}
		if a && b {
			both++
		}
	}
	if one == 0 {
		t.Skip("no false positives at all; nothing to compare")
	}
	if both*10 > one {
		t.Fatalf("salting ineffective: %d joint FPs of %d single FPs", both, one)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := NewForCapacity(500, 0.01, 99)
	for _, k := range keys(500, "x") {
		f.Add(k)
	}
	buf := f.AppendBinary(nil)
	if len(buf) != f.EncodedSize() {
		t.Fatalf("EncodedSize %d != encoded length %d", f.EncodedSize(), len(buf))
	}
	g, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Salt() != f.Salt() || g.Count() != f.Count() {
		t.Fatal("geometry not preserved")
	}
	for _, k := range keys(500, "x") {
		if !g.Contains(k) {
			t.Fatalf("decoded filter lost %q", k)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	f := NewForCapacity(10, 0.01, 1)
	f.Add("a")
	buf := f.AppendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeRejectsBadGeometry(t *testing.T) {
	// nbits not a multiple of 8.
	bad := []byte{9, 1, 0, 0, 0xff, 0xff}
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("accepted nbits=9")
	}
}

func TestOverloaded(t *testing.T) {
	f := NewForCapacity(10, 0.01, 3)
	for _, k := range keys(10, "a") {
		f.Add(k)
	}
	if f.Overloaded() {
		t.Fatal("filter overloaded at design capacity")
	}
	for _, k := range keys(2000, "b") {
		f.Add(k)
	}
	if !f.Overloaded() {
		t.Fatalf("filter not overloaded after 200x capacity (fpr=%.4f)", f.EstimatedFPR())
	}
}

func TestAddCountsDistinct(t *testing.T) {
	f := NewForCapacity(100, 0.01, 5)
	for i := 0; i < 50; i++ {
		f.Add("same-key")
	}
	if f.Count() != 1 {
		t.Fatalf("Count = %d after repeated Add of one key, want 1", f.Count())
	}
}

func TestClone(t *testing.T) {
	f := NewForCapacity(100, 0.01, 5)
	f.Add("a")
	g := f.Clone()
	g.Add("b")
	if f.Contains("b") {
		t.Fatal("mutation of clone visible in original")
	}
	if !g.Contains("a") || !g.Contains("b") {
		t.Fatal("clone lost content")
	}
}

func TestSizeCap(t *testing.T) {
	f := NewForCapacity(1<<30, 0.0001, 1)
	if f.Bits() > MaxBits {
		t.Fatalf("Bits %d exceeds MaxBits %d", f.Bits(), MaxBits)
	}
}

func TestNewClamps(t *testing.T) {
	f := New(0, 0, 1)
	if f.Bits() < 8 || f.Hashes() < 1 {
		t.Fatalf("New(0,0) gave bits=%d hashes=%d", f.Bits(), f.Hashes())
	}
	// Bad fpr falls back to the default.
	g := NewForCapacity(100, 42.0, 1)
	if g.Bits() == 0 {
		t.Fatal("NewForCapacity with bad fpr produced empty filter")
	}
}

// TestQuickNoFalseNegatives property-tests membership after random
// insertion orders.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		filter := NewForCapacity(uint64(n)+1, 0.01, uint64(seed))
		inserted := make([]string, 0, n)
		for i := 0; i < int(n); i++ {
			k := fmt.Sprintf("k%d", rng.Int63())
			filter.Add(k)
			inserted = append(inserted, k)
		}
		for _, k := range inserted {
			if !filter.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEncodeRoundTrip property-tests codec stability.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		filter := NewForCapacity(uint64(n)+1, 0.02, uint64(seed))
		for i := 0; i < int(n); i++ {
			filter.Add(fmt.Sprintf("k%d", rng.Int63()))
		}
		buf := filter.AppendBinary(nil)
		if len(buf) != filter.EncodedSize() {
			return false
		}
		g, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return g.Bits() == filter.Bits() && g.Count() == filter.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
