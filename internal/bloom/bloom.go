// Package bloom implements the Bloom filter used by PDS redundancy
// detection (§III-B.2, §V-3).
//
// A consumer appends to each discovery query a Bloom filter of the
// metadata entries it has already received; nodes en route test entries
// against the filter before sending them back, and insert what they do
// send, so the same entry is never transmitted to the consumer twice.
//
// Per the paper's §V-3, the filter is salted per discovery round with a
// different hash seed: an entry that is a false positive in one round is
// very unlikely to remain one in the next (0.02 after 2 rounds, 0.003
// after 3 for 10,000 entries at 1% FPR), so a bounded filter size still
// converges to full recall over rounds.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a classic Bloom filter with double hashing. The zero Filter
// is unusable; construct with New or NewForCapacity.
type Filter struct {
	bits    []byte
	nbits   uint64
	nhashes uint32
	salt    uint64
	count   uint64 // inserted elements, approximate occupancy signal
}

// Default sizing targets used when the caller does not specify them.
const (
	// DefaultFalsePositiveRate is the per-round FPR target (§V-3: "a
	// small (e.g., < 0.01) false positive rate").
	DefaultFalsePositiveRate = 0.01
	// MaxBits caps the filter size so one filter always fits in a query
	// message even for very large received sets; salting across rounds
	// compensates for the elevated FPR (§V-3).
	MaxBits = 1 << 17 // 16 KiB
)

// New returns a filter with the exact geometry given. nbits is rounded up
// to a multiple of 8 and clamped to at least 8; nhashes is clamped to at
// least 1. salt distinguishes hash families across rounds.
func New(nbits uint64, nhashes uint32, salt uint64) *Filter {
	if nbits < 8 {
		nbits = 8
	}
	nbits = (nbits + 7) / 8 * 8
	if nbits > MaxBits {
		nbits = MaxBits
	}
	if nhashes == 0 {
		nhashes = 1
	}
	return &Filter{
		bits:    make([]byte, nbits/8),
		nbits:   nbits,
		nhashes: nhashes,
		salt:    salt,
	}
}

// NewForCapacity returns a filter sized for n expected elements at the
// target false-positive rate, using the standard formulas
// m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2). The size is capped at MaxBits.
func NewForCapacity(n uint64, fpr float64, salt uint64) *Filter {
	if n == 0 {
		n = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = DefaultFalsePositiveRate
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)))
	if m > MaxBits {
		// §V-3: the filter size is bounded; the hash count must be
		// optimized for the clamped geometry or large sets degenerate.
		m = MaxBits
	}
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k, salt)
}

// hashPair returns the two independent base hashes for double hashing.
func (f *Filter) hashPair(key string) (uint64, uint64) {
	h := fnv.New64a()
	var saltBuf [8]byte
	binary.BigEndian.PutUint64(saltBuf[:], f.salt)
	h.Write(saltBuf[:])
	h.Write([]byte(key))
	h1 := h.Sum64()
	// Second hash: re-mix with a distinct prefix byte so h2 is
	// independent of h1 for the double-hashing scheme g_i = h1 + i*h2.
	h.Reset()
	h.Write([]byte{0xd6})
	h.Write(saltBuf[:])
	h.Write([]byte(key))
	h2 := h.Sum64() | 1 // force odd so strides cover the table
	return h1, h2
}

// Add inserts the key. The distinct-element counter only advances when
// at least one bit was newly set, so repeated insertions of the same
// keys (which en-route rewriting does constantly) do not inflate the
// occupancy estimate.
func (f *Filter) Add(key string) {
	h1, h2 := f.hashPair(key)
	changed := false
	for i := uint32(0); i < f.nhashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		mask := byte(1) << (bit % 8)
		if f.bits[bit/8]&mask == 0 {
			f.bits[bit/8] |= mask
			changed = true
		}
	}
	if changed {
		f.count++
	}
}

// Contains reports whether the key may have been inserted. False
// positives are possible; false negatives are not.
func (f *Filter) Contains(key string) bool {
	h1, h2 := f.hashPair(key)
	for i := uint32(0); i < f.nhashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls (an upper bound on distinct
// elements).
func (f *Filter) Count() uint64 { return f.count }

// Bits returns the size of the bit table.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() uint32 { return f.nhashes }

// Salt returns the hash-family salt.
func (f *Filter) Salt() uint64 { return f.salt }

// EstimatedFPR returns the expected false-positive rate given the current
// occupancy: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPR() float64 {
	if f.nbits == 0 {
		return 1
	}
	k := float64(f.nhashes)
	exp := -k * float64(f.count) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), k)
}

// Overloaded reports whether so many elements were inserted (relative
// to the filter's geometry) that Contains answers are untrustworthy.
// PDS queries carry filters sized by the consumer, but en-route
// rewriting inserts every entry served along the way; once the
// estimated false-positive rate passes 25% the filter must fail open —
// pruning on it would discard entries the consumer never received.
// Below that, residual false positives are tolerated: the per-round
// salting re-randomizes them, exactly the §V-3 argument (the paper
// quotes ~14% per-round FPR converging to 0.02 joint FPR in 2 rounds
// for 10,000 entries on a bounded filter).
func (f *Filter) Overloaded() bool { return f.EstimatedFPR() > 0.25 }

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	out := &Filter{
		bits:    make([]byte, len(f.bits)),
		nbits:   f.nbits,
		nhashes: f.nhashes,
		salt:    f.salt,
		count:   f.count,
	}
	copy(out.bits, f.bits)
	return out
}

// EncodedSize returns the number of bytes AppendBinary writes. The byte
// cost of carrying the filter inside query messages is charged to the
// message-overhead metric.
//
//pds:hotpath
func (f *Filter) EncodedSize() int {
	return uvarintLen(f.nbits) + uvarintLen(uint64(f.nhashes)) +
		uvarintLen(f.salt) + uvarintLen(f.count) + len(f.bits)
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendBinary appends the wire form: nbits, nhashes, salt, count, table.
func (f *Filter) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, f.nbits)
	dst = binary.AppendUvarint(dst, uint64(f.nhashes))
	dst = binary.AppendUvarint(dst, f.salt)
	dst = binary.AppendUvarint(dst, f.count)
	dst = append(dst, f.bits...)
	return dst
}

var errTruncated = errors.New("bloom: truncated encoding")

// Decode decodes a filter encoded by AppendBinary and returns the
// remaining bytes.
func Decode(src []byte) (*Filter, []byte, error) {
	nbits, used := binary.Uvarint(src)
	if used <= 0 {
		return nil, nil, errTruncated
	}
	src = src[used:]
	nhashes, used := binary.Uvarint(src)
	if used <= 0 {
		return nil, nil, errTruncated
	}
	src = src[used:]
	salt, used := binary.Uvarint(src)
	if used <= 0 {
		return nil, nil, errTruncated
	}
	src = src[used:]
	count, used := binary.Uvarint(src)
	if used <= 0 {
		return nil, nil, errTruncated
	}
	src = src[used:]
	if nbits == 0 || nbits%8 != 0 || nbits > MaxBits {
		return nil, nil, fmt.Errorf("bloom: invalid table size %d", nbits)
	}
	nbytes := int(nbits / 8)
	if len(src) < nbytes {
		return nil, nil, errTruncated
	}
	f := &Filter{
		bits:    make([]byte, nbytes),
		nbits:   nbits,
		nhashes: uint32(nhashes),
		salt:    salt,
		count:   count,
	}
	copy(f.bits, src[:nbytes])
	return f, src[nbytes:], nil
}
