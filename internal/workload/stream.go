package workload

import (
	"fmt"
	"time"

	"pds/internal/attr"
	"pds/internal/clock"
	"pds/internal/core"
	"pds/internal/metrics"
	"pds/internal/qoe"
	"pds/internal/trace"
)

// Retriever is the slice of the retrieval plane a workload driver
// needs. *core.Node implements it; wrappers (city-scale spatial nodes,
// tests) can substitute their own.
type Retriever interface {
	RetrieveWithOptions(item attr.Descriptor, opts core.RetrieveOptions, cb func(core.RetrievalResult))
}

// PublishFunc publishes one chunk of an item somewhere in the
// deployment. Drivers never talk to producer nodes directly — the
// scenario decides where published data lands (one radio node, the k
// nearest city nodes, ...), which keeps the drivers reusable across
// simulation cores.
type PublishFunc func(item attr.Descriptor, chunkID int, payload []byte)

// ChunkCount returns how many chunkBytes-sized chunks cover totalBytes.
func ChunkCount(totalBytes, chunkBytes int) int {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkSize
	}
	n := (totalBytes + chunkBytes - 1) / chunkBytes
	if n == 0 {
		n = 1
	}
	return n
}

// ChunkPayload builds chunk c's deterministic payload for a
// totalBytes-long item: the same position-dependent byte pattern the
// scenario layer seeds, with the final chunk truncated to the item's
// exact size.
func ChunkPayload(totalBytes, chunkBytes, c int) []byte {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkSize
	}
	size := chunkBytes
	if rem := totalBytes - c*chunkBytes; rem < size {
		size = rem
	}
	if size <= 0 {
		size = 1
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(c + i)
	}
	return payload
}

// SegmentDescriptor names segment seg of the stream called name.
func SegmentDescriptor(name string, seg int, spec StreamSpec) attr.Descriptor {
	return attr.NewDescriptor().
		Set(attr.AttrNamespace, attr.String("media")).
		Set(attr.AttrDataType, attr.String("hls")).
		Set(attr.AttrName, attr.String(fmt.Sprintf("%s/seg%04d", name, seg))).
		Set(attr.AttrTotalChunks, attr.Int(int64(ChunkCount(spec.SegmentBytes, spec.ChunkBytes))))
}

// StreamResult is one finished streaming session.
type StreamResult struct {
	// Report is the playback model's account of the session.
	Report qoe.Report
	// QoE is the session's metric counters (startup, stalls, rebuffer
	// ratio, segment-latency percentiles, byte attribution).
	QoE metrics.QoECounters
	// SegmentsComplete counts segments fully retrieved before the
	// session budget ran out.
	SegmentsComplete int
	// MeanLatency is the mean availability-to-ready segment latency
	// over completed segments.
	MeanLatency time.Duration
	// Rounds is the mean request rounds per completed segment.
	Rounds float64
}

// StreamSession drives one HLS-style streaming session: the producer
// side publishes fixed-duration segments on its timeline (live) or all
// at once (VOD); the consumer side keeps up to Prefetch segments in
// flight ahead of the playhead, each as its own PDR retrieval with a
// deadline equal to the remaining session budget and a request window
// shrunk so the pipelined sessions together impose one foreground
// retrieval's load. Completions feed the qoe.Playback model, which
// charges startup delay and stalls.
type StreamSession struct {
	clk  clock.Clock
	spec StreamSpec
	pub  PublishFunc
	cons Retriever
	tr   *trace.NodeTracer
	name string

	start  time.Duration
	endAt  time.Duration
	window int

	items       []attr.Descriptor
	published   []bool
	publishedAt []time.Duration
	requested   []bool
	inFlight    int
	resolved    int

	play      *qoe.Playback
	lat       metrics.Pool
	localB    uint64
	p2pB      uint64
	roundsSum int
	complete  int
}

// StartStream begins a streaming session on clk and returns it. budget
// bounds the whole session (publish timeline plus retrieval tail);
// drive the clock until Done() and then read Result(). tr may be nil.
func StartStream(clk clock.Clock, spec StreamSpec, pub PublishFunc, cons Retriever,
	tr *trace.NodeTracer, name string, budget time.Duration) *StreamSession {
	spec = spec.withDefaults()
	s := &StreamSession{
		clk: clk, spec: spec, pub: pub, cons: cons, tr: tr, name: name,
		start:       clk.Now(),
		endAt:       clk.Now() + budget,
		items:       make([]attr.Descriptor, spec.Segments),
		published:   make([]bool, spec.Segments),
		publishedAt: make([]time.Duration, spec.Segments),
		requested:   make([]bool, spec.Segments),
	}
	// Split one foreground retrieval's request window across the
	// pipeline so aggregate in-flight load stays polite.
	s.window = core.DefaultConfig().OutstandingChunks / spec.Prefetch
	if s.window < 1 {
		s.window = 1
	}
	s.play = qoe.NewPlayback(spec.Segments, spec.SegmentDuration, s.start)
	for i := 0; i < spec.Segments; i++ {
		s.items[i] = SegmentDescriptor(name, i, spec)
	}
	if spec.VOD {
		for i := 0; i < spec.Segments; i++ {
			s.publish(i)
		}
	} else {
		for i := 0; i < spec.Segments; i++ {
			seg := i
			clk.Schedule(time.Duration(i)*spec.SegmentDuration, func() { s.publish(seg) })
		}
	}
	return s
}

func (s *StreamSession) publish(seg int) {
	total := ChunkCount(s.spec.SegmentBytes, s.spec.ChunkBytes)
	for c := 0; c < total; c++ {
		s.pub(s.items[seg], c, ChunkPayload(s.spec.SegmentBytes, s.spec.ChunkBytes, c))
	}
	s.published[seg] = true
	s.publishedAt[seg] = s.clk.Now()
	s.topUp()
}

// topUp keeps the prefetch pipeline full: request published segments in
// order until Prefetch retrievals are in flight.
func (s *StreamSession) topUp() {
	for s.inFlight < s.spec.Prefetch {
		next := -1
		for i := 0; i < s.spec.Segments; i++ {
			if s.published[i] && !s.requested[i] {
				next = i
				break
			}
		}
		if next < 0 {
			return
		}
		s.request(next)
	}
}

func (s *StreamSession) request(seg int) {
	s.requested[seg] = true
	s.inFlight++
	s.tr.PrefetchIssued(seg, s.inFlight, s.name)
	budget := s.endAt - s.clk.Now()
	if budget <= 0 {
		budget = time.Millisecond
	}
	arrivals := 0
	opts := core.RetrieveOptions{
		Deadline:          budget,
		Progress:          func(done, total int) { arrivals++ },
		OutstandingChunks: s.window,
	}
	s.cons.RetrieveWithOptions(s.items[seg], opts, func(r core.RetrievalResult) {
		s.finish(seg, arrivals, r)
	})
}

func (s *StreamSession) finish(seg, arrivals int, r core.RetrievalResult) {
	now := s.clk.Now()
	s.inFlight--
	s.resolved++

	// Byte attribution: chunks the progress callback never reported
	// were already held locally (cached from relaying/overhearing);
	// the rest travelled the P2P plane.
	delivered := 0
	total := r.Item.TotalChunks()
	for c := 0; c < total; c++ {
		delivered += len(r.Chunks[c])
	}
	localChunks := len(r.Chunks) - arrivals
	if localChunks < 0 {
		localChunks = 0
	}
	localBytes := localChunks * s.spec.ChunkBytes
	if localBytes > delivered {
		localBytes = delivered
	}
	s.localB += uint64(localBytes)
	s.p2pB += uint64(delivered - localBytes)

	if r.Complete {
		s.complete++
		s.roundsSum += r.Rounds
		s.lat.AddDuration(now - s.publishedAt[seg])
		for _, st := range s.play.SegmentReady(seg, now) {
			s.tr.Stall(st.Segment, st.Duration, s.name)
			s.tr.SegmentDeadlineMiss(st.Segment, st.Duration, s.name)
		}
	} else {
		// Lateness 0 marks a segment that never became playable.
		s.tr.SegmentDeadlineMiss(seg, 0, s.name)
	}
	s.topUp()
}

// Done reports whether every segment's retrieval has resolved
// (complete or failed).
func (s *StreamSession) Done() bool { return s.resolved == s.spec.Segments }

// Result finalizes the playback model at the current clock time and
// returns the session's QoE account. Call once, after Done() (or after
// the session budget elapsed).
func (s *StreamSession) Result() StreamResult {
	rep := s.play.Finalize(s.clk.Now())
	q := rep.Counters(&s.lat)
	q.LocalBytes = s.localB
	q.P2PBytes = s.p2pB
	out := StreamResult{Report: rep, QoE: q, SegmentsComplete: s.complete}
	if s.complete > 0 {
		out.Rounds = float64(s.roundsSum) / float64(s.complete)
		out.MeanLatency = time.Duration(s.lat.Mean() * float64(time.Second))
	}
	return out
}
