package workload

import (
	"reflect"
	"testing"
)

// FuzzParseSpec hammers the workload-spec grammar with arbitrary
// strings: parsing must never panic, accepted specs must come out of
// WithDefaults fully positive (every count, size and duration the
// drivers divide by or allocate with), and parsing must be
// deterministic (the parser is pure — same spec, same result).
func FuzzParseSpec(f *testing.F) {
	f.Add("stream")
	f.Add("stream:")
	f.Add("stream:segs=16,segdur=4s,segsize=1MB,prefetch=3")
	f.Add("stream:vod")
	f.Add("stream:segs=8,segdur=6s,segsize=512KB,prefetch=2,chunk=256KB,vod")
	f.Add("crowd")
	f.Add("crowd:items=8,layers=4,layersize=2MB,clients=24,arrival=step:10s/16")
	f.Add("crowd:arrival=poisson:500ms")
	f.Add("crowd:zipf=1.5,chunk=64KB")
	f.Add("")
	f.Add(":")
	f.Add("stream:,,,")
	f.Add("stream:segs=0")
	f.Add("crowd:zipf=0.5")
	f.Add("crowd:arrival=step:10s/0")
	f.Add("torrent:seeds=9")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			if _, err2 := ParseSpec(spec); err2 == nil {
				t.Fatalf("spec %q: rejected once (%v), accepted on re-parse", spec, err)
			}
			return
		}
		switch s.Kind {
		case Stream:
			st := s.Stream
			if st.Segments <= 0 || st.SegmentDuration <= 0 || st.SegmentBytes <= 0 ||
				st.Prefetch <= 0 || st.ChunkBytes <= 0 {
				t.Fatalf("spec %q: non-positive stream field: %+v", spec, st)
			}
		case Crowd:
			c := s.Crowd
			if c.Items <= 0 || c.Layers <= 0 || c.LayerBytes <= 0 ||
				c.Clients <= 0 || c.ChunkBytes <= 0 || c.ZipfS <= 1 {
				t.Fatalf("spec %q: non-positive crowd field: %+v", spec, c)
			}
			switch c.Arrival.Kind {
			case Poisson:
				if c.Arrival.Mean <= 0 {
					t.Fatalf("spec %q: poisson mean %v", spec, c.Arrival.Mean)
				}
			case Step:
				if c.Arrival.At <= 0 || c.Arrival.Count <= 0 || c.Arrival.Count > c.Clients {
					t.Fatalf("spec %q: step arrival %+v with %d clients",
						spec, c.Arrival, c.Clients)
				}
			default:
				t.Fatalf("spec %q: invalid arrival kind %d", spec, c.Arrival.Kind)
			}
		default:
			t.Fatalf("spec %q: invalid kind %d", spec, s.Kind)
		}
		s2, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: accepted once, rejected on re-parse: %v", spec, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("spec %q: re-parse differs:\n  %+v\n  %+v", spec, s, s2)
		}
	})
}
