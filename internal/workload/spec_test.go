package workload

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecStreamDefaults(t *testing.T) {
	s, err := ParseSpec("stream")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Stream {
		t.Fatalf("kind = %v", s.Kind)
	}
	want := StreamSpec{
		Segments: 8, SegmentDuration: 6 * time.Second,
		SegmentBytes: 512 << 10, Prefetch: 2, ChunkBytes: 256 << 10,
	}
	if s.Stream != want {
		t.Fatalf("defaults = %+v, want %+v", s.Stream, want)
	}
	// "stream:" (trailing colon, empty option list) parses identically.
	s2, err := ParseSpec("stream:")
	if err != nil || s2 != s {
		t.Fatalf("stream: = %+v, %v", s2, err)
	}
}

func TestParseSpecStreamOptions(t *testing.T) {
	s, err := ParseSpec("stream:segs=16,segdur=4s,segsize=1MB,prefetch=3,chunk=128KB,vod")
	if err != nil {
		t.Fatal(err)
	}
	want := StreamSpec{
		Segments: 16, SegmentDuration: 4 * time.Second,
		SegmentBytes: 1 << 20, Prefetch: 3, ChunkBytes: 128 << 10, VOD: true,
	}
	if s.Stream != want {
		t.Fatalf("parsed = %+v, want %+v", s.Stream, want)
	}
}

func TestParseSpecCrowdDefaults(t *testing.T) {
	s, err := ParseSpec("crowd")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Crowd
	if c.Items != 3 || c.Layers != 3 || c.LayerBytes != 768<<10 ||
		c.Clients != 12 || c.ZipfS != 1.2 || c.ChunkBytes != 256<<10 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Arrival.Kind != Poisson || c.Arrival.Mean != 2*time.Second {
		t.Fatalf("arrival = %+v", c.Arrival)
	}
}

func TestParseSpecCrowdStep(t *testing.T) {
	s, err := ParseSpec("crowd:items=8,layers=4,layersize=2MB,clients=24,zipf=1.5,arrival=step:10s/16")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Crowd
	if c.Items != 8 || c.Layers != 4 || c.LayerBytes != 2<<20 || c.Clients != 24 || c.ZipfS != 1.5 {
		t.Fatalf("parsed = %+v", c)
	}
	if c.Arrival.Kind != Step || c.Arrival.At != 10*time.Second || c.Arrival.Count != 16 {
		t.Fatalf("arrival = %+v", c.Arrival)
	}
}

func TestParseSpecStepCountClamped(t *testing.T) {
	s, err := ParseSpec("crowd:clients=4,arrival=step:5s/100")
	if err != nil {
		t.Fatal(err)
	}
	if s.Crowd.Arrival.Count != 4 {
		t.Fatalf("count = %d, want clamped to 4", s.Crowd.Arrival.Count)
	}
}

func TestParseSpecPoissonMean(t *testing.T) {
	s, err := ParseSpec("crowd:arrival=poisson:500ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.Crowd.Arrival.Kind != Poisson || s.Crowd.Arrival.Mean != 500*time.Millisecond {
		t.Fatalf("arrival = %+v", s.Crowd.Arrival)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                      // no kind
		"torrent:",              // unknown kind
		"stream:bogus=1",        // unknown option
		"stream:segs",           // missing value
		"stream:segs=0",         // non-positive
		"stream:segs=-3",        // negative
		"stream:vod=yes",        // flag with value
		"stream:segdur=fast",    // bad duration
		"stream:segdur=-2s",     // negative duration
		"stream:segsize=huge",   // bad size
		"stream:segsize=0KB",    // zero size
		"crowd:zipf=1.0",        // zipf must be > 1
		"crowd:zipf=x",          // bad float
		"crowd:arrival=uniform", // unknown arrival
		"crowd:arrival=step:nope",
		"crowd:arrival=step:5s/zero",
		"crowd:arrival=poisson:-1s",
		"crowd:layersize=9999999GB", // overflow guard
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSpecWhitespaceTolerant(t *testing.T) {
	s, err := ParseSpec(" stream: segs=4 , vod ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Stream.Segments != 4 || !s.Stream.VOD {
		t.Fatalf("parsed = %+v", s.Stream)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"512":   512,
		"512KB": 512 << 10,
		"2MB":   2 << 20,
		"1GB":   1 << 30,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Stream.String() != "stream" || Crowd.String() != "crowd" {
		t.Fatal("kind names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "kind(") {
		t.Fatal("unknown kind rendering")
	}
}
