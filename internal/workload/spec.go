// Package workload is the generator-driven workload engine: it turns a
// compact, parseable workload spec into deterministic traffic against
// the PDS retrieval plane — an HLS-style segmented streaming session
// with pipelined prefetch and a playback QoE model, or a flash-crowd
// bulk-artifact distribution (layered blobs, Zipf popularity, Poisson
// or step-burst arrivals).
//
// Drivers run entirely on the caller's clock and RNG: the package never
// reads wall time or global randomness, so identical seeds produce
// identical schedules, metric rows and trace streams — the same
// contract the rest of the simulation core keeps.
package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates workload specs.
type Kind int

// Workload kinds.
const (
	// Stream is an HLS-style segmented streaming session.
	Stream Kind = iota + 1
	// Crowd is a flash-crowd bulk-artifact distribution.
	Crowd
)

// String returns the lowercase kind name used in the spec grammar.
func (k Kind) String() string {
	switch k {
	case Stream:
		return "stream"
	case Crowd:
		return "crowd"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefaultChunkSize is the paper's 256 KB chunk size (§VI-A), the unit
// workload items are split into.
const DefaultChunkSize = 256 << 10

// StreamSpec parametrizes a segmented streaming session.
type StreamSpec struct {
	// Segments is the number of fixed-duration segments (default 8).
	Segments int
	// SegmentDuration is each segment's play time (default 6s, the
	// common HLS target duration).
	SegmentDuration time.Duration
	// SegmentBytes is each segment's payload size (default 512 KB).
	SegmentBytes int
	// Prefetch is the pipeline depth: how many segments may be in
	// flight ahead of the playhead (default 2).
	Prefetch int
	// ChunkBytes is the chunk size segments split into (default 256 KB).
	ChunkBytes int
	// VOD publishes every segment at session start instead of on the
	// live producer timeline (one segment per SegmentDuration).
	VOD bool
}

func (s StreamSpec) withDefaults() StreamSpec {
	if s.Segments == 0 {
		s.Segments = 8
	}
	if s.SegmentDuration == 0 {
		s.SegmentDuration = 6 * time.Second
	}
	if s.SegmentBytes == 0 {
		s.SegmentBytes = 512 << 10
	}
	if s.Prefetch == 0 {
		s.Prefetch = 2
	}
	if s.ChunkBytes == 0 {
		s.ChunkBytes = DefaultChunkSize
	}
	return s
}

// ArrivalKind discriminates crowd arrival processes.
type ArrivalKind int

// Arrival processes.
const (
	// Poisson arrivals: exponential inter-arrival times.
	Poisson ArrivalKind = iota + 1
	// Step arrivals: a warmup trickle, then Count clients at once.
	Step
)

// ArrivalSpec is a crowd's client arrival process.
type ArrivalSpec struct {
	Kind ArrivalKind
	// Mean is the Poisson mean inter-arrival time.
	Mean time.Duration
	// At is the step burst's instant; Count is its size (clients not in
	// the burst trickle in uniformly over [0, At)).
	At    time.Duration
	Count int
}

// CrowdSpec parametrizes a flash-crowd bulk-artifact distribution:
// Items layered artifacts sharing one common base layer (container
// images sharing an OS layer), pulled by Clients whose artifact choice
// is Zipf-popular.
type CrowdSpec struct {
	// Items is the artifact catalog size (default 3).
	Items int
	// Layers per artifact, including the shared base layer (default 3).
	Layers int
	// LayerBytes is each layer's payload size (default 768 KB).
	LayerBytes int
	// Clients is how many nodes pull an artifact (default 12).
	Clients int
	// ZipfS is the artifact popularity exponent (default 1.2).
	ZipfS float64
	// ChunkBytes is the chunk size layers split into (default 256 KB).
	ChunkBytes int
	// Arrival is the client arrival process (default Poisson, 2s mean).
	Arrival ArrivalSpec
}

func (c CrowdSpec) withDefaults() CrowdSpec {
	if c.Items == 0 {
		c.Items = 3
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.LayerBytes == 0 {
		c.LayerBytes = 768 << 10
	}
	if c.Clients == 0 {
		c.Clients = 12
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = DefaultChunkSize
	}
	if c.Arrival.Kind == 0 {
		c.Arrival.Kind = Poisson
	}
	if c.Arrival.Kind == Poisson && c.Arrival.Mean == 0 {
		c.Arrival.Mean = 2 * time.Second
	}
	if c.Arrival.Kind == Step {
		if c.Arrival.At == 0 {
			c.Arrival.At = 10 * time.Second
		}
		if c.Arrival.Count == 0 || c.Arrival.Count > c.Clients {
			c.Arrival.Count = c.Clients
		}
	}
	return c
}

// Spec is one parsed workload: exactly one of Stream/Crowd is active,
// selected by Kind.
type Spec struct {
	Kind   Kind
	Stream StreamSpec
	Crowd  CrowdSpec
}

// WithDefaults fills zero fields with the grammar's defaults.
func (s Spec) WithDefaults() Spec {
	switch s.Kind {
	case Stream:
		s.Stream = s.Stream.withDefaults()
	case Crowd:
		s.Crowd = s.Crowd.withDefaults()
	}
	return s
}

// ParseSpec parses a compact workload spec (mirroring
// fault.ParsePlan's grammar style): a kind, a colon, and a
// comma-separated option list.
//
//	stream:segs=<n>,segdur=<dur>,segsize=<size>[,prefetch=<k>][,chunk=<size>][,vod]
//	crowd:items=<n>,layers=<n>,layersize=<size>[,clients=<n>][,zipf=<s>][,chunk=<size>][,arrival=poisson:<mean>|step:<at>/<count>]
//
// Durations use Go syntax ("6s", "500ms"); sizes are bytes with an
// optional KB/MB/GB suffix ("512KB", "2MB"). Every option is optional —
// "stream:" and "crowd:" (or the bare kind names) select the defaults.
// Examples:
//
//	stream:segs=16,segdur=4s,segsize=1MB,prefetch=3
//	stream:vod
//	crowd:items=8,layers=4,layersize=2MB,clients=24,arrival=step:10s/16
//	crowd:arrival=poisson:500ms
func ParseSpec(spec string) (Spec, error) {
	kindStr, rest, _ := strings.Cut(spec, ":")
	var out Spec
	switch strings.TrimSpace(kindStr) {
	case "stream":
		out.Kind = Stream
	case "crowd":
		out.Kind = Crowd
	default:
		return Spec{}, fmt.Errorf("workload: unknown kind %q (want stream or crowd)", kindStr)
	}
	for _, field := range strings.Split(rest, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		var err error
		if out.Kind == Stream {
			err = parseStreamOption(&out.Stream, key, val, hasVal)
		} else {
			err = parseCrowdOption(&out.Crowd, key, val, hasVal)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("workload: option %q: %w", field, err)
		}
	}
	return out.WithDefaults(), nil
}

func parseStreamOption(s *StreamSpec, key, val string, hasVal bool) error {
	if key == "vod" {
		if hasVal {
			return fmt.Errorf("vod takes no value")
		}
		s.VOD = true
		return nil
	}
	if !hasVal {
		return fmt.Errorf("missing =<value>")
	}
	var err error
	switch key {
	case "segs":
		s.Segments, err = parseCount(val)
	case "segdur":
		s.SegmentDuration, err = parsePositiveDuration(val)
	case "segsize":
		s.SegmentBytes, err = parseSize(val)
	case "prefetch":
		s.Prefetch, err = parseCount(val)
	case "chunk":
		s.ChunkBytes, err = parseSize(val)
	default:
		return fmt.Errorf("unknown stream option %q", key)
	}
	return err
}

func parseCrowdOption(c *CrowdSpec, key, val string, hasVal bool) error {
	if !hasVal {
		return fmt.Errorf("missing =<value>")
	}
	var err error
	switch key {
	case "items":
		c.Items, err = parseCount(val)
	case "layers":
		c.Layers, err = parseCount(val)
	case "layersize":
		c.LayerBytes, err = parseSize(val)
	case "clients":
		c.Clients, err = parseCount(val)
	case "chunk":
		c.ChunkBytes, err = parseSize(val)
	case "zipf":
		c.ZipfS, err = strconv.ParseFloat(val, 64)
		if err == nil && c.ZipfS <= 1 {
			err = fmt.Errorf("zipf exponent %v must be > 1", c.ZipfS)
		}
	case "arrival":
		c.Arrival, err = parseArrival(val)
	default:
		return fmt.Errorf("unknown crowd option %q", key)
	}
	return err
}

func parseArrival(val string) (ArrivalSpec, error) {
	kind, rest, hasRest := strings.Cut(val, ":")
	switch kind {
	case "poisson":
		a := ArrivalSpec{Kind: Poisson}
		if hasRest {
			mean, err := parsePositiveDuration(rest)
			if err != nil {
				return ArrivalSpec{}, fmt.Errorf("poisson mean: %w", err)
			}
			a.Mean = mean
		}
		return a, nil
	case "step":
		a := ArrivalSpec{Kind: Step}
		if !hasRest {
			return a, nil
		}
		atStr, countStr, hasCount := strings.Cut(rest, "/")
		at, err := parsePositiveDuration(atStr)
		if err != nil {
			return ArrivalSpec{}, fmt.Errorf("step at: %w", err)
		}
		a.At = at
		if hasCount {
			if a.Count, err = parseCount(countStr); err != nil {
				return ArrivalSpec{}, fmt.Errorf("step count: %w", err)
			}
		}
		return a, nil
	default:
		return ArrivalSpec{}, fmt.Errorf("unknown arrival process %q (want poisson or step)", kind)
	}
}

// parseCount parses a positive integer.
func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("%d must be positive", n)
	}
	return n, nil
}

func parsePositiveDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("%v must be positive", d)
	}
	return d, nil
}

// parseSize parses a byte size with an optional KB/MB/GB suffix.
func parseSize(s string) (int, error) {
	shift := 0
	switch {
	case strings.HasSuffix(s, "KB"):
		shift, s = 10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "MB"):
		shift, s = 20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "GB"):
		shift, s = 30, strings.TrimSuffix(s, "GB")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size %d must be positive", n)
	}
	if shift > 0 && n > (1<<(40-shift)) {
		return 0, fmt.Errorf("size %s%s too large", s, map[int]string{10: "KB", 20: "MB", 30: "GB"}[shift])
	}
	return n << shift, nil
}
