package workload

import (
	"fmt"
	"math/rand"
	"time"

	"pds/internal/attr"
	"pds/internal/clock"
	"pds/internal/core"
	"pds/internal/metrics"
	"pds/internal/trace"
)

// Artifact is one layered blob in a crowd catalog. Layer 0 is the
// shared base layer: every artifact of a catalog names the same
// descriptor there (container images sharing an OS layer), so a crowd
// pulling different artifacts still overlaps on it.
type Artifact struct {
	Index  int
	Layers []attr.Descriptor
}

func layerDescriptor(name string, spec CrowdSpec) func(artifact, layer int) attr.Descriptor {
	total := int64(ChunkCount(spec.LayerBytes, spec.ChunkBytes))
	return func(artifact, layer int) attr.Descriptor {
		label := fmt.Sprintf("%s/base", name)
		if layer > 0 {
			label = fmt.Sprintf("%s/a%02d/l%02d", name, artifact, layer)
		}
		return attr.NewDescriptor().
			Set(attr.AttrNamespace, attr.String("artifact")).
			Set(attr.AttrDataType, attr.String("layer")).
			Set(attr.AttrName, attr.String(label)).
			Set(attr.AttrTotalChunks, attr.Int(total))
	}
}

// BuildCatalog builds the spec's artifact catalog under the given name.
func BuildCatalog(name string, spec CrowdSpec) []Artifact {
	spec = spec.withDefaults()
	desc := layerDescriptor(name, spec)
	cat := make([]Artifact, spec.Items)
	for a := range cat {
		cat[a].Index = a
		cat[a].Layers = make([]attr.Descriptor, spec.Layers)
		for l := 0; l < spec.Layers; l++ {
			cat[a].Layers[l] = desc(a, l)
		}
	}
	return cat
}

// PublishCatalog publishes every distinct layer of the catalog once
// through pub (the shared base layer is published a single time).
func PublishCatalog(cat []Artifact, spec CrowdSpec, pub PublishFunc) {
	spec = spec.withDefaults()
	total := ChunkCount(spec.LayerBytes, spec.ChunkBytes)
	for a, art := range cat {
		for l, item := range art.Layers {
			if l == 0 && a > 0 {
				continue // shared base layer, already published
			}
			for c := 0; c < total; c++ {
				pub(item, c, ChunkPayload(spec.LayerBytes, spec.ChunkBytes, c))
			}
		}
	}
}

// CrowdClient is one pulling node: its retrieval plane and optional
// tracer.
type CrowdClient struct {
	R      Retriever
	Tracer *trace.NodeTracer
}

// CrowdResult is one finished flash-crowd run.
type CrowdResult struct {
	// QoE maps crowd measures onto the shared counters: StartupDelay is
	// the mean time to first completed layer, percentiles pool every
	// layer-retrieval latency, DeadlineMisses counts layers that never
	// completed, and the byte fields attribute delivered payload.
	QoE metrics.QoECounters
	// LayersComplete / LayersTotal count layer retrievals.
	LayersComplete int
	LayersTotal    int
	// ClientsComplete counts clients that obtained their full artifact.
	ClientsComplete int
	// MeanCompletion is the mean arrival-to-full-artifact time over
	// complete clients.
	MeanCompletion time.Duration
	// Rounds is the mean request rounds per completed layer.
	Rounds float64
}

// CrowdSession drives one flash-crowd distribution: clients arrive per
// the spec's arrival process, each picks a Zipf-popular artifact and
// pulls all its layers concurrently (request windows shrunk so one
// client imposes one foreground retrieval's load).
type CrowdSession struct {
	clk   clock.Clock
	spec  CrowdSpec
	endAt time.Duration

	resolved int
	total    int

	lat        metrics.Pool
	startupSum time.Duration
	startupN   int
	complSum   time.Duration
	complete   int
	layersOK   int
	missed     int
	roundsSum  int
	localB     uint64
	p2pB       uint64
}

// clientState tracks one client's progress across its layers.
type clientState struct {
	arrived  time.Duration
	pending  int
	allOK    bool
	firstLat bool
}

// StartCrowd begins a flash-crowd run on clk and returns it. Artifact
// choices and Poisson draws come from rng in client-index order, so a
// fixed seed fixes the whole schedule. budget bounds the run; drive the
// clock until Done() then read Result(). The catalog's layers must
// already be published (see PublishCatalog).
func StartCrowd(clk clock.Clock, spec CrowdSpec, cat []Artifact, clients []CrowdClient,
	rng *rand.Rand, budget time.Duration) *CrowdSession {
	spec = spec.withDefaults()
	s := &CrowdSession{
		clk: clk, spec: spec,
		endAt: clk.Now() + budget,
		total: len(clients) * spec.Layers,
	}
	// Per-layer politeness: a client pulling L layers at once gets one
	// foreground retrieval's aggregate window.
	window := core.DefaultConfig().OutstandingChunks / spec.Layers
	if window < 1 {
		window = 1
	}

	// Draw the whole schedule up front, in client index order.
	choices := make([]int, len(clients))
	var zipf *rand.Zipf
	if len(cat) > 1 {
		zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(len(cat)-1))
	}
	for i := range choices {
		if zipf != nil {
			choices[i] = int(zipf.Uint64())
		}
	}
	arrivals := make([]time.Duration, len(clients))
	switch spec.Arrival.Kind {
	case Step:
		burst := spec.Arrival.Count
		if burst > len(clients) {
			burst = len(clients)
		}
		lead := len(clients) - burst
		for i := range arrivals {
			if i >= lead {
				arrivals[i] = spec.Arrival.At
			} else {
				// Warmup trickle, evenly spaced over [0, At).
				arrivals[i] = spec.Arrival.At * time.Duration(i) / time.Duration(lead)
			}
		}
	default: // Poisson
		var t time.Duration
		for i := range arrivals {
			t += expo(rng, spec.Arrival.Mean)
			arrivals[i] = t
		}
	}

	for i := range clients {
		cl := clients[i]
		art := cat[choices[i]]
		at := arrivals[i]
		clk.Schedule(at, func() { s.arrive(cl, art, window) })
	}
	return s
}

// expo draws an exponential inter-arrival time with the given mean.
func expo(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

func (s *CrowdSession) arrive(cl CrowdClient, art Artifact, window int) {
	now := s.clk.Now()
	st := &clientState{arrived: now, pending: len(art.Layers), allOK: true}
	budget := s.endAt - now
	if budget <= 0 {
		budget = time.Millisecond
	}
	for l, item := range art.Layers {
		layer, it := l, item
		label := item.Name()
		cl.Tracer.PrefetchIssued(layer, len(art.Layers), label)
		arrived := 0
		opts := core.RetrieveOptions{
			Deadline:          budget,
			Progress:          func(done, total int) { arrived++ },
			OutstandingChunks: window,
		}
		cl.R.RetrieveWithOptions(it, opts, func(r core.RetrievalResult) {
			s.layerDone(cl, st, layer, label, arrived, r)
		})
	}
}

func (s *CrowdSession) layerDone(cl CrowdClient, st *clientState, layer int,
	label string, arrivalChunks int, r core.RetrievalResult) {
	now := s.clk.Now()
	s.resolved++
	st.pending--

	delivered := 0
	total := r.Item.TotalChunks()
	for c := 0; c < total; c++ {
		delivered += len(r.Chunks[c])
	}
	localChunks := len(r.Chunks) - arrivalChunks
	if localChunks < 0 {
		localChunks = 0
	}
	localBytes := localChunks * s.spec.ChunkBytes
	if localBytes > delivered {
		localBytes = delivered
	}
	s.localB += uint64(localBytes)
	s.p2pB += uint64(delivered - localBytes)

	if r.Complete {
		s.layersOK++
		s.roundsSum += r.Rounds
		s.lat.AddDuration(now - st.arrived)
		if !st.firstLat {
			st.firstLat = true
			s.startupSum += now - st.arrived
			s.startupN++
		}
	} else {
		s.missed++
		st.allOK = false
		cl.Tracer.SegmentDeadlineMiss(layer, 0, label)
	}
	if st.pending == 0 && st.allOK {
		s.complete++
		s.complSum += now - st.arrived
	}
}

// Done reports whether every client's every layer has resolved.
func (s *CrowdSession) Done() bool { return s.resolved == s.total }

// Result aggregates the run. Call once, after Done() (or after the
// session budget elapsed).
func (s *CrowdSession) Result() CrowdResult {
	q := metrics.QoECounters{
		DeadlineMisses: uint64(s.missed),
		LocalBytes:     s.localB,
		P2PBytes:       s.p2pB,
	}
	if s.startupN > 0 {
		q.StartupDelay = s.startupSum / time.Duration(s.startupN)
	}
	if s.lat.Len() > 0 {
		q.P50 = s.lat.PercentileDuration(0.50)
		q.P95 = s.lat.PercentileDuration(0.95)
		q.P99 = s.lat.PercentileDuration(0.99)
	}
	q.SyncSeconds()
	out := CrowdResult{
		QoE:             q,
		LayersComplete:  s.layersOK,
		LayersTotal:     s.total,
		ClientsComplete: s.complete,
	}
	if s.complete > 0 {
		out.MeanCompletion = s.complSum / time.Duration(s.complete)
	}
	if s.layersOK > 0 {
		out.Rounds = float64(s.roundsSum) / float64(s.layersOK)
	}
	return out
}
