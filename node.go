package pds

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"pds/internal/clock"
	"pds/internal/core"
	"pds/internal/diskstore"
	"pds/internal/link"
	"pds/internal/metrics"
	"pds/internal/origin"
	"pds/internal/store"
	"pds/internal/strategy"
	"pds/internal/trace"
	"pds/internal/tracker"
	"pds/internal/wire"
)

// PayloadBackend is the pluggable payload storage/fetch interface
// (re-exported from internal/store): diskstore implements it, and so
// do the origin backends used by the tiered retrieval path.
type PayloadBackend = store.PayloadBackend

// Transport carries frames between peers. Implementations must invoke
// the receive callback (set via SetReceiver) for every incoming frame,
// from any goroutine, and Send must not block for long.
// udptransport (used via WithUDP) is the standard implementation.
type Transport interface {
	// Send broadcasts a frame to all reachable peers. It reports false
	// when the frame was dropped locally (e.g. a full buffer).
	Send(msg *Message) bool
	// SetReceiver registers the frame sink. Called once before any
	// Send.
	SetReceiver(fn func(*Message))
	// Close stops the transport.
	Close() error
}

// Node is a real-time PDS endpoint: the protocol engine bound to a
// transport and the wall clock. All methods are safe for concurrent
// use.
type Node struct {
	id     NodeID
	clk    *clock.Real
	core   *core.Node
	link   *link.Link
	trans  Transport
	tracer *trace.Tracer
	nt     *trace.NodeTracer
	disk   *diskstore.Backend

	// Deployment plane (all nil/zero without the matching options).
	trk      *tracker.Client
	origin   PayloadBackend
	hbStop   func()
	p2pShare int // percent of the tiered budget given to the P2P tier
}

// NodeOption configures NewNode.
type NodeOption func(*nodeOptions)

type nodeOptions struct {
	id           NodeID
	cfg          core.Config
	linkCfg      *link.Config
	seed         int64
	seedSet      bool
	cacheCap     int
	tracing      bool
	traceCap     int
	dataDir      string
	persistCache bool

	trackers       []string
	trackerTimeout time.Duration
	announceTTL    time.Duration
	announceEvery  time.Duration
	origin         PayloadBackend
	p2pShare       int

	routing string
	caching string
}

// WithNodeID sets the node id; default is randomly drawn. IDs must be
// unique among communicating peers.
func WithNodeID(id NodeID) NodeOption {
	return func(o *nodeOptions) { o.id = id }
}

// WithConfig overrides the protocol configuration.
func WithConfig(cfg Config) NodeOption {
	return func(o *nodeOptions) { o.cfg = cfg }
}

// WithLinkConfig overrides the reliability-layer configuration.
func WithLinkConfig(cfg link.Config) NodeOption {
	return func(o *nodeOptions) { o.linkCfg = &cfg }
}

// WithSeed makes the node's randomness deterministic (tests).
func WithSeed(seed int64) NodeOption {
	return func(o *nodeOptions) { o.seed = seed; o.seedSet = true }
}

// WithCacheCap bounds cached payload bytes (0 = unlimited).
func WithCacheCap(capBytes int) NodeOption {
	return func(o *nodeOptions) { o.cacheCap = capBytes }
}

// WithTracing enables hop-level event tracing (link and protocol
// planes) with the given per-node ring capacity (<= 0 selects the
// default). Read the events via Tracer.
func WithTracing(perNodeCap int) NodeOption {
	return func(o *nodeOptions) { o.tracing = true; o.traceCap = perNodeCap }
}

// WithDataDir puts a crash-safe persistent chunk store under the
// node's data store, rooted at dir (created if absent). Owned data
// survives restarts: a node reopened over the same directory comes up
// with everything it had published. Cached payloads evicted from RAM
// spill to disk and keep serving from there. Without this option the
// node is purely in-memory (the default).
func WithDataDir(dir string) NodeOption {
	return func(o *nodeOptions) { o.dataDir = dir }
}

// WithPersistentCache also keeps cached (non-owned) payloads across
// restarts, as spilled records with a fresh entry lease. Only
// meaningful together with WithDataDir; default off — the paper's
// crash semantics, where the opportunistic cache is volatile.
func WithPersistentCache() NodeOption {
	return func(o *nodeOptions) { o.persistCache = true }
}

// WithTrackers points the node at one or more tracker servers
// (pds-tracker), in priority order. The node announces itself (when
// the transport exposes a listen address) and the tiered retrieval
// path consults the trackers for edge peers, failing over down the
// list and falling back to the last good answer when every tracker is
// unreachable.
func WithTrackers(addrs ...string) NodeOption {
	return func(o *nodeOptions) { o.trackers = append(o.trackers, addrs...) }
}

// WithTrackerTimeout bounds one tracker request (default 2s).
func WithTrackerTimeout(d time.Duration) NodeOption {
	return func(o *nodeOptions) { o.trackerTimeout = d }
}

// WithAnnounce overrides the tracker announce lease and refresh
// interval (defaults 45s / 15s). Only meaningful with WithTrackers.
func WithAnnounce(ttl, every time.Duration) NodeOption {
	return func(o *nodeOptions) { o.announceTTL = ttl; o.announceEvery = every }
}

// WithOrigin attaches an origin payload backend as the retrieval tier
// of last resort: chunks the P2P swarm and the tracker-learned edge
// peers cannot produce before the deadline are fetched from it
// directly (origin.NewHTTP, a diskstore backend, or origin.NewStatic
// in tests). Fetched chunks enter the cache, so the node then serves
// them to peers like any cached copy.
func WithOrigin(b PayloadBackend) NodeOption {
	return func(o *nodeOptions) { o.origin = b }
}

// NewHTTPOrigin returns a read-only origin backend fetching payloads
// from an HTTP(S) base URL (e.g. "http://origin.example:8080"); pass
// it to WithOrigin. timeout bounds one fetch, 0 selects 10s.
func NewHTTPOrigin(baseURL string, timeout time.Duration) PayloadBackend {
	return origin.NewHTTP(baseURL, timeout)
}

// WithStrategies selects the node's routing and caching strategies by
// registry name (RoutingStrategies / CachingStrategies list them); an
// empty name keeps that plane's default. Applied after WithConfig, so
// the two options compose in either order.
func WithStrategies(routing, caching string) NodeOption {
	return func(o *nodeOptions) { o.routing = routing; o.caching = caching }
}

// RoutingStrategies lists the registered routing strategy names.
func RoutingStrategies() []string { return strategy.RoutingNames() }

// CachingStrategies lists the registered caching strategy names.
func CachingStrategies() []string { return strategy.CachingNames() }

// WithP2PShare sets the percentage (1..99) of a tiered retrieval's
// time budget spent in the P2P tier before escalating to edge peers
// and the origin; default 50. Only meaningful when a later tier
// exists — with nothing to escalate to, P2P gets the whole budget.
func WithP2PShare(percent int) NodeOption {
	return func(o *nodeOptions) { o.p2pShare = percent }
}

// NewNode creates a real-time node on the transport.
func NewNode(trans Transport, opts ...NodeOption) (*Node, error) {
	if trans == nil {
		return nil, errors.New("pds: nil transport")
	}
	o := nodeOptions{cfg: core.DefaultConfig(), seed: time.Now().UnixNano()}
	for _, opt := range opts {
		opt(&o)
	}
	rng := rand.New(rand.NewSource(o.seed))
	if o.id == 0 {
		o.id = NodeID(rng.Uint32() | 1) // non-zero
	}
	if o.cacheCap > 0 {
		o.cfg.CacheCap = o.cacheCap
	}
	if o.routing != "" {
		if !containsName(strategy.RoutingNames(), o.routing) {
			return nil, fmt.Errorf("pds: unknown routing strategy %q (have %v)", o.routing, strategy.RoutingNames())
		}
		o.cfg.Routing = o.routing
	}
	if o.caching != "" {
		if !containsName(strategy.CachingNames(), o.caching) {
			return nil, fmt.Errorf("pds: unknown caching strategy %q (have %v)", o.caching, strategy.CachingNames())
		}
		o.cfg.Caching = o.caching
	}
	clk := clock.NewReal()
	n := &Node{id: o.id, clk: clk, trans: trans}

	lcfg := link.DefaultConfig(func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max)))
	})
	if o.linkCfg != nil {
		jitter := lcfg.Jitter
		lcfg = *o.linkCfg
		if lcfg.Jitter == nil {
			lcfg.Jitter = jitter
		}
	}
	n.link = link.New(clk, o.id, func(m *wire.Message) bool { return trans.Send(m) }, lcfg)
	n.core = core.NewNode(o.id, clk, rng, func(m *wire.Message) { n.link.Send(m) }, o.cfg)
	n.link.OnGiveUp = n.core.OnSendFailure
	if o.tracing {
		n.tracer = trace.New(clk.Now, o.traceCap)
		n.nt = n.tracer.ForNode(o.id)
		n.link.SetTracer(n.nt)
		n.core.SetTracer(n.nt)
		if ts, ok := trans.(interface{ SetTracer(*trace.NodeTracer) }); ok {
			ts.SetTracer(n.nt)
		}
	}
	// Deployment-plane hookups: a face mesh learns the local id (for
	// hello frames and self-connection detection) and reports circuit
	// breaker trips into the neighbor-health blacklist.
	if fl, ok := trans.(interface{ SetLocalID(wire.NodeID) }); ok {
		fl.SetLocalID(o.id)
	}
	if pd, ok := trans.(interface{ OnPeerDown(func(wire.NodeID)) }); ok {
		pd.OnPeerDown(func(nb wire.NodeID) {
			clk.Locked(func() { n.core.NotePeerFailure(nb) })
		})
	}
	n.origin = o.origin
	n.p2pShare = o.p2pShare
	if n.p2pShare <= 0 || n.p2pShare >= 100 {
		n.p2pShare = 50
	}
	if len(o.trackers) > 0 {
		n.trk = tracker.NewClient(o.trackers, o.trackerTimeout)
		n.trk.SetTracer(n.nt)
		if la, ok := trans.(interface{ ListenAddr() net.Addr }); ok {
			if addr := la.ListenAddr(); addr != nil {
				ttl, every := o.announceTTL, o.announceEvery
				if ttl <= 0 {
					ttl = 45 * time.Second
				}
				if every <= 0 {
					every = ttl / 3
				}
				n.hbStop = n.trk.StartHeartbeat(o.id, addr.String(), ttl, every)
			}
		}
	}
	if o.dataDir != "" {
		st, err := diskstore.Open(o.dataDir, diskstore.Options{
			PersistCached: o.persistCache,
		})
		if err != nil {
			return nil, fmt.Errorf("pds: open data dir: %w", err)
		}
		n.disk = diskstore.NewBackend(st)
		clk.Locked(func() { n.core.AttachBackend(n.disk) })
	}
	trans.SetReceiver(func(m *wire.Message) {
		clk.Locked(func() {
			if up := n.link.HandleIncoming(m); up != nil {
				n.core.HandleMessage(up)
			}
		})
	})
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Tracer returns the node's event tracer, nil unless WithTracing was
// given. The tracer is safe for concurrent use; dump recent events
// with its WriteJSONL.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Close stops the node, its transport, and — when WithDataDir was
// given — syncs and closes the persistent store.
func (n *Node) Close() error {
	if n.hbStop != nil {
		n.hbStop()
	}
	n.clk.Locked(func() { n.core.Stop() })
	err := n.trans.Close()
	if n.disk != nil {
		if derr := n.disk.Store().Close(); err == nil {
			err = derr
		}
	}
	return err
}

// TrackerStats returns a snapshot of the tracker client's counters;
// ok is false when the node runs without WithTrackers.
func (n *Node) TrackerStats() (tracker.ClientStats, bool) {
	if n.trk == nil {
		return tracker.ClientStats{}, false
	}
	return n.trk.Stats(), true
}

// DiskStats returns a snapshot of the persistent store's counters; ok
// is false when the node runs without a data directory.
func (n *Node) DiskStats() (diskstore.Stats, bool) {
	if n.disk == nil {
		return diskstore.Stats{}, false
	}
	return n.disk.Store().Stats(), true
}

// Publish makes a small data item available to peers.
func (n *Node) Publish(d Descriptor, payload []byte) {
	n.clk.Locked(func() { n.core.PublishSmall(d, payload) })
}

// PublishEntry announces metadata without a payload.
func (n *Node) PublishEntry(d Descriptor) {
	n.clk.Locked(func() { n.core.PublishEntry(d) })
}

// PublishItem chunks and publishes a large item; it returns the item
// descriptor completed with the totalchunks attribute, which consumers
// need for retrieval.
func (n *Node) PublishItem(d Descriptor, payload []byte, chunkSize int) Descriptor {
	var out Descriptor
	n.clk.Locked(func() { out = n.core.PublishItem(d, payload, chunkSize) })
	return out
}

// Unpublish withdraws a previously published item or entry.
func (n *Node) Unpublish(d Descriptor) {
	n.clk.Locked(func() { n.core.Unpublish(d) })
}

// Discover runs Peer Data Discovery for the selector and returns the
// metadata entries found. It blocks until the multi-round controller
// decides no more data is coming, or ctx is done.
func (n *Node) Discover(ctx context.Context, sel Query) ([]Descriptor, error) {
	res, err := n.discover(ctx, sel, core.DiscoverOptions{})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// Collect retrieves all small data items matching the selector and
// returns descriptor/payload pairs keyed by descriptor key.
func (n *Node) Collect(ctx context.Context, sel Query) (map[string][]byte, []Descriptor, error) {
	res, err := n.discover(ctx, sel, core.DiscoverOptions{
		Kind:            wire.KindData,
		CollectPayloads: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Payloads, res.Entries, nil
}

func (n *Node) discover(ctx context.Context, sel Query, opts core.DiscoverOptions) (DiscoveryResult, error) {
	done := make(chan DiscoveryResult, 1)
	n.clk.Locked(func() {
		n.core.Discover(sel, opts, func(r DiscoveryResult) { done <- r })
	})
	select {
	case r := <-done:
		return r, nil
	case <-ctx.Done():
		return DiscoveryResult{}, fmt.Errorf("pds: discover: %w", ctx.Err())
	}
}

// Retrieve fetches a large item (two-phase PDR) and returns the
// assembled payload. The descriptor must carry totalchunks, normally
// obtained from Discover.
func (n *Node) Retrieve(ctx context.Context, item Descriptor) ([]byte, error) {
	return n.RetrieveWithProgress(ctx, item, nil)
}

// RetrieveWithProgress is Retrieve with a progress callback invoked
// after each arriving chunk with (chunks held, total). The callback
// runs on the node's internal goroutine and must not block.
func (n *Node) RetrieveWithProgress(ctx context.Context, item Descriptor, progress func(done, total int)) ([]byte, error) {
	return n.RetrieveWithOptions(ctx, item, RetrieveOptions{Progress: progress})
}

// RetrieveWithOptions is Retrieve with per-session options: a deadline
// override, a progress callback, and the request-window override
// streaming prefetchers use to keep several pipelined sessions polite.
func (n *Node) RetrieveWithOptions(ctx context.Context, item Descriptor, opts RetrieveOptions) ([]byte, error) {
	done := make(chan RetrievalResult, 1)
	n.clk.Locked(func() {
		n.core.RetrieveWithOptions(item, opts, func(r RetrievalResult) { done <- r })
	})
	select {
	case r := <-done:
		if !r.Complete {
			return nil, fmt.Errorf("pds: retrieve %s: incomplete (%d/%d chunks)",
				item, len(r.Chunks), item.TotalChunks())
		}
		payload, ok := r.Assemble()
		if !ok {
			return nil, fmt.Errorf("pds: retrieve %s: assembly failed", item)
		}
		return payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("pds: retrieve: %w", ctx.Err())
	}
}

// Stats returns protocol counters.
func (n *Node) Stats() core.Stats {
	var s core.Stats
	n.clk.Locked(func() { s = n.core.Stats() })
	return s
}

// StrategyStats returns the active routing/caching strategy names and
// their bookkeeping counters. Always available — nodes running the
// defaults report "cdi"/"fifo" with zero counters.
func (n *Node) StrategyStats() metrics.StrategyCounters {
	var out metrics.StrategyCounters
	n.clk.Locked(func() {
		rc := n.core.RoutingCounters()
		cc := n.core.CacheCounters()
		out = metrics.StrategyCounters{
			Routing:         n.core.RoutingName(),
			Caching:         n.core.CachingName(),
			AdvertFloods:    rc.AdvertFloods,
			AdvertsHeld:     rc.AdvertsHeld,
			FreqEntries:     rc.FreqEntries,
			RouteOverrides:  rc.RouteOverrides,
			FallbackRoutes:  rc.FallbackRoutes,
			CacheAdmitSkips: cc.AdmitSkips,
		}
	})
	return out
}

// containsName reports whether names contains n.
func containsName(names []string, n string) bool {
	for _, v := range names {
		if v == n {
			return true
		}
	}
	return false
}

// LocalEntries lists the metadata entries currently in this node's
// store (own and cached) matching the selector. It answers locally
// without any network traffic; use Discover to query the neighborhood.
func (n *Node) LocalEntries(sel Query) []Descriptor {
	var out []Descriptor
	n.clk.Locked(func() {
		out = n.core.Store().Match(sel, n.clk.Now())
	})
	return out
}

// LocalData reports how many chunks of the item this node currently
// holds, out of the item's total.
func (n *Node) LocalData(item Descriptor) (held, total int) {
	n.clk.Locked(func() {
		held = len(n.core.Store().ChunksHeld(item.ItemDescriptor().Key()))
	})
	return held, item.TotalChunks()
}
