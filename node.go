package pds

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"pds/internal/clock"
	"pds/internal/core"
	"pds/internal/diskstore"
	"pds/internal/link"
	"pds/internal/trace"
	"pds/internal/wire"
)

// Transport carries frames between peers. Implementations must invoke
// the receive callback (set via SetReceiver) for every incoming frame,
// from any goroutine, and Send must not block for long.
// udptransport (used via WithUDP) is the standard implementation.
type Transport interface {
	// Send broadcasts a frame to all reachable peers. It reports false
	// when the frame was dropped locally (e.g. a full buffer).
	Send(msg *Message) bool
	// SetReceiver registers the frame sink. Called once before any
	// Send.
	SetReceiver(fn func(*Message))
	// Close stops the transport.
	Close() error
}

// Node is a real-time PDS endpoint: the protocol engine bound to a
// transport and the wall clock. All methods are safe for concurrent
// use.
type Node struct {
	id     NodeID
	clk    *clock.Real
	core   *core.Node
	link   *link.Link
	trans  Transport
	tracer *trace.Tracer
	disk   *diskstore.Backend
}

// NodeOption configures NewNode.
type NodeOption func(*nodeOptions)

type nodeOptions struct {
	id           NodeID
	cfg          core.Config
	linkCfg      *link.Config
	seed         int64
	seedSet      bool
	cacheCap     int
	tracing      bool
	traceCap     int
	dataDir      string
	persistCache bool
}

// WithNodeID sets the node id; default is randomly drawn. IDs must be
// unique among communicating peers.
func WithNodeID(id NodeID) NodeOption {
	return func(o *nodeOptions) { o.id = id }
}

// WithConfig overrides the protocol configuration.
func WithConfig(cfg Config) NodeOption {
	return func(o *nodeOptions) { o.cfg = cfg }
}

// WithLinkConfig overrides the reliability-layer configuration.
func WithLinkConfig(cfg link.Config) NodeOption {
	return func(o *nodeOptions) { o.linkCfg = &cfg }
}

// WithSeed makes the node's randomness deterministic (tests).
func WithSeed(seed int64) NodeOption {
	return func(o *nodeOptions) { o.seed = seed; o.seedSet = true }
}

// WithCacheCap bounds cached payload bytes (0 = unlimited).
func WithCacheCap(capBytes int) NodeOption {
	return func(o *nodeOptions) { o.cacheCap = capBytes }
}

// WithTracing enables hop-level event tracing (link and protocol
// planes) with the given per-node ring capacity (<= 0 selects the
// default). Read the events via Tracer.
func WithTracing(perNodeCap int) NodeOption {
	return func(o *nodeOptions) { o.tracing = true; o.traceCap = perNodeCap }
}

// WithDataDir puts a crash-safe persistent chunk store under the
// node's data store, rooted at dir (created if absent). Owned data
// survives restarts: a node reopened over the same directory comes up
// with everything it had published. Cached payloads evicted from RAM
// spill to disk and keep serving from there. Without this option the
// node is purely in-memory (the default).
func WithDataDir(dir string) NodeOption {
	return func(o *nodeOptions) { o.dataDir = dir }
}

// WithPersistentCache also keeps cached (non-owned) payloads across
// restarts, as spilled records with a fresh entry lease. Only
// meaningful together with WithDataDir; default off — the paper's
// crash semantics, where the opportunistic cache is volatile.
func WithPersistentCache() NodeOption {
	return func(o *nodeOptions) { o.persistCache = true }
}

// NewNode creates a real-time node on the transport.
func NewNode(trans Transport, opts ...NodeOption) (*Node, error) {
	if trans == nil {
		return nil, errors.New("pds: nil transport")
	}
	o := nodeOptions{cfg: core.DefaultConfig(), seed: time.Now().UnixNano()}
	for _, opt := range opts {
		opt(&o)
	}
	rng := rand.New(rand.NewSource(o.seed))
	if o.id == 0 {
		o.id = NodeID(rng.Uint32() | 1) // non-zero
	}
	if o.cacheCap > 0 {
		o.cfg.CacheCap = o.cacheCap
	}
	clk := clock.NewReal()
	n := &Node{id: o.id, clk: clk, trans: trans}

	lcfg := link.DefaultConfig(func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max)))
	})
	if o.linkCfg != nil {
		jitter := lcfg.Jitter
		lcfg = *o.linkCfg
		if lcfg.Jitter == nil {
			lcfg.Jitter = jitter
		}
	}
	n.link = link.New(clk, o.id, func(m *wire.Message) bool { return trans.Send(m) }, lcfg)
	n.core = core.NewNode(o.id, clk, rng, func(m *wire.Message) { n.link.Send(m) }, o.cfg)
	n.link.OnGiveUp = n.core.OnSendFailure
	if o.tracing {
		n.tracer = trace.New(clk.Now, o.traceCap)
		nt := n.tracer.ForNode(o.id)
		n.link.SetTracer(nt)
		n.core.SetTracer(nt)
	}
	if o.dataDir != "" {
		st, err := diskstore.Open(o.dataDir, diskstore.Options{
			PersistCached: o.persistCache,
		})
		if err != nil {
			return nil, fmt.Errorf("pds: open data dir: %w", err)
		}
		n.disk = diskstore.NewBackend(st)
		clk.Locked(func() { n.core.AttachBackend(n.disk) })
	}
	trans.SetReceiver(func(m *wire.Message) {
		clk.Locked(func() {
			if up := n.link.HandleIncoming(m); up != nil {
				n.core.HandleMessage(up)
			}
		})
	})
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Tracer returns the node's event tracer, nil unless WithTracing was
// given. The tracer is safe for concurrent use; dump recent events
// with its WriteJSONL.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Close stops the node, its transport, and — when WithDataDir was
// given — syncs and closes the persistent store.
func (n *Node) Close() error {
	n.clk.Locked(func() { n.core.Stop() })
	err := n.trans.Close()
	if n.disk != nil {
		if derr := n.disk.Store().Close(); err == nil {
			err = derr
		}
	}
	return err
}

// DiskStats returns a snapshot of the persistent store's counters; ok
// is false when the node runs without a data directory.
func (n *Node) DiskStats() (diskstore.Stats, bool) {
	if n.disk == nil {
		return diskstore.Stats{}, false
	}
	return n.disk.Store().Stats(), true
}

// Publish makes a small data item available to peers.
func (n *Node) Publish(d Descriptor, payload []byte) {
	n.clk.Locked(func() { n.core.PublishSmall(d, payload) })
}

// PublishEntry announces metadata without a payload.
func (n *Node) PublishEntry(d Descriptor) {
	n.clk.Locked(func() { n.core.PublishEntry(d) })
}

// PublishItem chunks and publishes a large item; it returns the item
// descriptor completed with the totalchunks attribute, which consumers
// need for retrieval.
func (n *Node) PublishItem(d Descriptor, payload []byte, chunkSize int) Descriptor {
	var out Descriptor
	n.clk.Locked(func() { out = n.core.PublishItem(d, payload, chunkSize) })
	return out
}

// Unpublish withdraws a previously published item or entry.
func (n *Node) Unpublish(d Descriptor) {
	n.clk.Locked(func() { n.core.Unpublish(d) })
}

// Discover runs Peer Data Discovery for the selector and returns the
// metadata entries found. It blocks until the multi-round controller
// decides no more data is coming, or ctx is done.
func (n *Node) Discover(ctx context.Context, sel Query) ([]Descriptor, error) {
	res, err := n.discover(ctx, sel, core.DiscoverOptions{})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// Collect retrieves all small data items matching the selector and
// returns descriptor/payload pairs keyed by descriptor key.
func (n *Node) Collect(ctx context.Context, sel Query) (map[string][]byte, []Descriptor, error) {
	res, err := n.discover(ctx, sel, core.DiscoverOptions{
		Kind:            wire.KindData,
		CollectPayloads: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Payloads, res.Entries, nil
}

func (n *Node) discover(ctx context.Context, sel Query, opts core.DiscoverOptions) (DiscoveryResult, error) {
	done := make(chan DiscoveryResult, 1)
	n.clk.Locked(func() {
		n.core.Discover(sel, opts, func(r DiscoveryResult) { done <- r })
	})
	select {
	case r := <-done:
		return r, nil
	case <-ctx.Done():
		return DiscoveryResult{}, fmt.Errorf("pds: discover: %w", ctx.Err())
	}
}

// Retrieve fetches a large item (two-phase PDR) and returns the
// assembled payload. The descriptor must carry totalchunks, normally
// obtained from Discover.
func (n *Node) Retrieve(ctx context.Context, item Descriptor) ([]byte, error) {
	return n.RetrieveWithProgress(ctx, item, nil)
}

// RetrieveWithProgress is Retrieve with a progress callback invoked
// after each arriving chunk with (chunks held, total). The callback
// runs on the node's internal goroutine and must not block.
func (n *Node) RetrieveWithProgress(ctx context.Context, item Descriptor, progress func(done, total int)) ([]byte, error) {
	done := make(chan RetrievalResult, 1)
	n.clk.Locked(func() {
		n.core.RetrieveWithProgress(item, progress, func(r RetrievalResult) { done <- r })
	})
	select {
	case r := <-done:
		if !r.Complete {
			return nil, fmt.Errorf("pds: retrieve %s: incomplete (%d/%d chunks)",
				item, len(r.Chunks), item.TotalChunks())
		}
		payload, ok := r.Assemble()
		if !ok {
			return nil, fmt.Errorf("pds: retrieve %s: assembly failed", item)
		}
		return payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("pds: retrieve: %w", ctx.Err())
	}
}

// Stats returns protocol counters.
func (n *Node) Stats() core.Stats {
	var s core.Stats
	n.clk.Locked(func() { s = n.core.Stats() })
	return s
}

// LocalEntries lists the metadata entries currently in this node's
// store (own and cached) matching the selector. It answers locally
// without any network traffic; use Discover to query the neighborhood.
func (n *Node) LocalEntries(sel Query) []Descriptor {
	var out []Descriptor
	n.clk.Locked(func() {
		out = n.core.Store().Match(sel, n.clk.Now())
	})
	return out
}

// LocalData reports how many chunks of the item this node currently
// holds, out of the item's total.
func (n *Node) LocalData(item Descriptor) (held, total int) {
	n.clk.Locked(func() {
		held = len(n.core.Store().ChunksHeld(item.ItemDescriptor().Key()))
	})
	return held, item.TotalChunks()
}
