package pds

import (
	"testing"
	"time"
)

// TestSimDeterministicAcrossRuns: the public simulation facade inherits
// the engine's reproducibility guarantee.
func TestSimDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		sim := NewGridSim(4, 4, SimOptions{Seed: 99})
		for i := 0; i < 20; i++ {
			sim.Node(NodeID(1 + i%16)).PublishEntry(
				NewDescriptor().Set(AttrName, String(string(rune('a'+i)))))
		}
		res, ok := sim.Node(6).DiscoverAndWait(NewQuery(Exists(AttrName)), 2*time.Minute)
		if !ok {
			t.Fatal("discovery did not finish")
		}
		return res.Latency, sim.OverheadBytes()
	}
	l1, o1 := run()
	l2, o2 := run()
	if l1 != l2 || o1 != o2 {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", l1, o1, l2, o2)
	}
}

func TestSimNodeLookup(t *testing.T) {
	sim := NewSim(SimOptions{Seed: 1})
	if sim.Node(42) != nil {
		t.Fatal("lookup of absent node returned a handle")
	}
	n := sim.AddNode(42, 0, 0)
	if n.ID() != 42 {
		t.Fatalf("ID = %d", n.ID())
	}
	if sim.Node(42) == nil {
		t.Fatal("added node not found")
	}
	sim.RemoveNode(42)
	if sim.Node(42) != nil {
		t.Fatal("removed node still found")
	}
}

func TestSimMoveNodeAffectsReachability(t *testing.T) {
	sim := NewSim(SimOptions{Seed: 2})
	a := sim.AddNode(1, 0, 0)
	b := sim.AddNode(2, 500, 0) // far out of range
	a.PublishEntry(NewDescriptor().Set(AttrName, String("x")))
	res, ok := b.DiscoverAndWait(NewQuery(Exists(AttrName)), time.Minute)
	if !ok || len(res.Entries) != 0 {
		t.Fatalf("out-of-range discovery found %d entries (ok=%v)", len(res.Entries), ok)
	}
	sim.MoveNode(2, 30, 0)
	res, ok = b.DiscoverAndWait(NewQuery(Exists(AttrName)), 2*time.Minute)
	if !ok || len(res.Entries) != 1 {
		t.Fatalf("in-range discovery found %d entries (ok=%v)", len(res.Entries), ok)
	}
}

// TestSimRetrieveIncompleteReported: retrieving an item whose chunks do
// not exist must report an incomplete result rather than hang.
func TestSimRetrieveIncompleteReported(t *testing.T) {
	sim := NewGridSim(3, 3, SimOptions{Seed: 3})
	ghost := NewDescriptor().
		Set(AttrName, String("ghost")).
		Set(AttrTotalChunks, Int(4))
	res, ok := sim.Node(5).RetrieveAndWait(ghost, 20*time.Minute)
	if !ok {
		t.Fatal("retrieval session never reported")
	}
	if res.Complete {
		t.Fatal("retrieval of nonexistent chunks reported complete")
	}
}
