package pds

import (
	"context"
	"sync"
	"testing"
	"time"
)

func sensorDesc(name string) Descriptor {
	return NewDescriptor().
		Set(AttrNamespace, String("env")).
		Set(AttrDataType, String("nox")).
		Set(AttrName, String(name))
}

func sensorSel() Query {
	return NewQuery(Eq(AttrNamespace, String("env")))
}

// TestRealNodesOverChanHub runs two real-time nodes over the in-process
// hub: publish on one, discover and collect from the other.
func TestRealNodesOverChanHub(t *testing.T) {
	hub := NewChanHub()
	a, err := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(hub.Attach(), WithNodeID(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.Publish(sensorDesc("s1"), []byte("42ppb"))
	a.Publish(sensorDesc("s2"), []byte("17ppb"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	entries, err := b.Discover(ctx, sensorSel())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("discovered %d entries, want 2", len(entries))
	}
	payloads, descs, err := b.Collect(ctx, sensorSel())
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 || len(payloads) != 2 {
		t.Fatalf("collected %d descs / %d payloads", len(descs), len(payloads))
	}
}

// TestRealNodesRetrieveItem moves a chunked item across the hub.
func TestRealNodesRetrieveItem(t *testing.T) {
	hub := NewChanHub()
	a, err := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(hub.Attach(), WithNodeID(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	item := NewDescriptor().
		Set(AttrNamespace, String("media")).
		Set(AttrName, String("clip"))
	item = a.PublishItem(item, payload, 2048)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := b.Retrieve(ctx, item)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("retrieved %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

// TestRealNodesOverLoopbackUDP runs two nodes over real UDP sockets on
// 127.0.0.1, exercising the full encode/fragment/reassemble path.
func TestRealNodesOverLoopbackUDP(t *testing.T) {
	ta, err := NewLoopbackTransport(19751, []int{19752})
	if err != nil {
		t.Skipf("cannot bind loopback UDP: %v", err)
	}
	tb, err := NewLoopbackTransport(19752, []int{19751})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNode(ta, WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(tb, WithNodeID(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	payload := make([]byte, 20000) // forces fragmentation over UDP
	for i := range payload {
		payload[i] = byte(i % 127)
	}
	item := a.PublishItem(NewDescriptor().Set(AttrName, String("doc")), payload, 8192)
	a.Publish(sensorDesc("s1"), []byte("x"))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	entries, err := b.Discover(ctx, NewQuery(Exists(AttrName)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("discovered %d entries over UDP", len(entries))
	}
	got, err := b.Retrieve(ctx, item)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("retrieved %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

// TestSimFacade drives the public simulation API end to end.
func TestSimFacade(t *testing.T) {
	sim := NewGridSim(5, 5, SimOptions{Seed: 3})
	producer := sim.Node(1)
	consumer := sim.Node(13) // center of 5x5
	for i := 0; i < 10; i++ {
		producer.Publish(sensorDesc(string(rune('a'+i))), []byte{byte(i)})
	}
	res, done := consumer.DiscoverAndWait(sensorSel(), 2*time.Minute)
	if !done {
		t.Fatal("discovery did not finish")
	}
	if len(res.Entries) != 10 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if sim.OverheadBytes() == 0 {
		t.Fatal("no traffic counted")
	}

	item := producer.PublishItem(NewDescriptor().Set(AttrName, String("v")), make([]byte, 100000), DefaultChunkSize)
	rres, done := consumer.RetrieveAndWait(item, 5*time.Minute)
	if !done || !rres.Complete {
		t.Fatalf("retrieval done=%v complete=%v", done, rres.Complete)
	}
}

// TestSimMobileFacade smoke-tests the mobile deployment constructor.
func TestSimMobileFacade(t *testing.T) {
	sim, ids := NewMobileSim(1.0, 5*time.Minute, SimOptions{Seed: 4})
	if len(ids) == 0 {
		t.Fatal("no initial nodes")
	}
	prod := sim.Node(ids[0])
	prod.PublishEntry(sensorDesc("m1"))
	res, done := sim.Node(ids[len(ids)-1]).DiscoverAndWait(sensorSel(), 2*time.Minute)
	if !done {
		t.Fatal("mobile discovery did not finish")
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
}

// TestRetrieveWithProgress verifies the progress callback fires with
// monotonically nondecreasing counts ending at total.
func TestRetrieveWithProgress(t *testing.T) {
	hub := NewChanHub()
	a, err := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(hub.Attach(), WithNodeID(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	item := a.PublishItem(NewDescriptor().Set(AttrName, String("p")), make([]byte, 9000), 2048)
	var mu sync.Mutex
	var progress []int
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	data, err := b.RetrieveWithProgress(ctx, item, func(done, total int) {
		mu.Lock()
		progress = append(progress, done)
		mu.Unlock()
		if total != item.TotalChunks() {
			t.Errorf("total = %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 9000 {
		t.Fatalf("data = %d bytes", len(data))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(progress) == 0 {
		t.Fatal("no progress callbacks")
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress regressed: %v", progress)
		}
	}
	if progress[len(progress)-1] != item.TotalChunks() {
		t.Fatalf("final progress %d != total %d", progress[len(progress)-1], item.TotalChunks())
	}
}

// TestLocalIntrospection covers the store-inspection helpers.
func TestLocalIntrospection(t *testing.T) {
	hub := NewChanHub()
	n, err := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Publish(sensorDesc("s1"), []byte("v"))
	item := n.PublishItem(NewDescriptor().Set(AttrName, String("big")), make([]byte, 5000), 2048)

	if got := n.LocalEntries(sensorSel()); len(got) != 1 {
		t.Fatalf("LocalEntries = %d", len(got))
	}
	held, total := n.LocalData(item)
	if held != 3 || total != 3 {
		t.Fatalf("LocalData = %d/%d", held, total)
	}
	n.Unpublish(sensorDesc("s1"))
	if got := n.LocalEntries(sensorSel()); len(got) != 0 {
		t.Fatalf("LocalEntries after unpublish = %d", len(got))
	}
}

// TestNodeErrorPaths covers constructor and context failures.
func TestNodeErrorPaths(t *testing.T) {
	if _, err := NewNode(nil); err == nil {
		t.Fatal("nil transport accepted")
	}
	hub := NewChanHub()
	n, err := NewNode(hub.Attach(), WithNodeID(7), WithSeed(7), WithCacheCap(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// A cancelled context aborts a blocking discovery immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Discover(ctx, NewQuery()); err == nil {
		t.Fatal("cancelled discover returned nil error")
	}
	if _, err := n.Retrieve(ctx, NewDescriptor().Set(AttrTotalChunks, Int(3))); err == nil {
		t.Fatal("cancelled retrieve returned nil error")
	}
	if _, _, err := n.Collect(ctx, NewQuery()); err == nil {
		t.Fatal("cancelled collect returned nil error")
	}
}

// TestRetrieveIncompleteError: retrieving a phantom item yields an
// error naming the shortfall, not a silent empty payload.
func TestRetrieveIncompleteError(t *testing.T) {
	hub := NewChanHub()
	n, err := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	cfg := DefaultConfig()
	_ = cfg
	ghost := NewDescriptor().Set(AttrName, String("ghost")).Set(AttrTotalChunks, Int(2))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := n.Retrieve(ctx, ghost); err == nil {
		t.Fatal("phantom retrieval succeeded")
	}
}

// TestChanHubCloseStopsDelivery: frames sent after a member closes are
// not delivered to it.
func TestChanHubCloseStopsDelivery(t *testing.T) {
	hub := NewChanHub()
	a := hub.Attach()
	b := hub.Attach()
	got := make(chan *Message, 16)
	b.SetReceiver(func(m *Message) { got <- m })
	msg := &Message{Type: 3, Ack: &Ack{MsgID: 1, From: 1}}
	a.Send(msg)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("delivery before close failed")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a.Send(msg)
	select {
	case <-got:
		t.Fatal("delivery after close")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestNodeStatsExposed sanity-checks the counters surface.
func TestNodeStatsExposed(t *testing.T) {
	hub := NewChanHub()
	a, _ := NewNode(hub.Attach(), WithNodeID(1), WithSeed(1))
	defer a.Close()
	b, _ := NewNode(hub.Attach(), WithNodeID(2), WithSeed(2))
	defer b.Close()
	a.Publish(sensorDesc("s"), []byte("x"))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := b.Discover(ctx, sensorSel()); err != nil {
		t.Fatal(err)
	}
	if a.Stats().QueriesReceived == 0 {
		t.Fatal("producer saw no queries")
	}
}
