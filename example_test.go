package pds_test

import (
	"context"
	"fmt"
	"time"

	"pds"
)

// ExampleNode demonstrates the full real-time flow on the in-process
// hub: publish, discover, collect, retrieve.
func ExampleNode() {
	hub := pds.NewChanHub()
	producer, _ := pds.NewNode(hub.Attach(), pds.WithNodeID(1), pds.WithSeed(1))
	defer producer.Close()
	consumer, _ := pds.NewNode(hub.Attach(), pds.WithNodeID(2), pds.WithSeed(2))
	defer consumer.Close()

	reading := pds.NewDescriptor().
		Set(pds.AttrNamespace, pds.String("env")).
		Set(pds.AttrDataType, pds.String("nox")).
		Set(pds.AttrName, pds.String("sample-1"))
	producer.Publish(reading, []byte("42ppb"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	entries, _ := consumer.Discover(ctx, pds.NewQuery(
		pds.Eq(pds.AttrDataType, pds.String("nox"))))
	fmt.Println("entries:", len(entries))

	payloads, descs, _ := consumer.Collect(ctx, pds.NewQuery(
		pds.Eq(pds.AttrDataType, pds.String("nox"))))
	fmt.Printf("%s = %s\n", descs[0].Name(), payloads[descs[0].Key()])
	// Output:
	// entries: 1
	// sample-1 = 42ppb
}

// ExampleSim demonstrates a deterministic simulated deployment: the
// same seed always produces the same outcome.
func ExampleSim() {
	sim := pds.NewGridSim(3, 3, pds.SimOptions{Seed: 42})
	sim.Node(1).Publish(
		pds.NewDescriptor().Set(pds.AttrName, pds.String("hello")),
		[]byte("world"))

	res, ok := sim.Node(9).DiscoverAndWait(
		pds.NewQuery(pds.Exists(pds.AttrName)), time.Minute)
	fmt.Println("ok:", ok, "entries:", len(res.Entries))
	// Output:
	// ok: true entries: 1
}

// ExampleNode_retrieve shows two-phase retrieval of a chunked item.
func ExampleNode_retrieve() {
	hub := pds.NewChanHub()
	producer, _ := pds.NewNode(hub.Attach(), pds.WithNodeID(1), pds.WithSeed(1))
	defer producer.Close()
	consumer, _ := pds.NewNode(hub.Attach(), pds.WithNodeID(2), pds.WithSeed(2))
	defer consumer.Close()

	payload := make([]byte, 5000)
	item := producer.PublishItem(
		pds.NewDescriptor().Set(pds.AttrName, pds.String("clip")),
		payload, 2048)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	data, err := consumer.Retrieve(ctx, item)
	fmt.Println("bytes:", len(data), "err:", err)
	// Output:
	// bytes: 5000 err: <nil>
}
