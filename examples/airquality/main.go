// Airquality: crowdsensed pollution sampling (§II-A's "many small data
// items" scenario). Phones scattered over a park each hold NOx samples
// stamped with time and position attributes. A consumer collects only
// the samples inside a spatial window and a time range, using
// predicate-filtered discovery-and-collect; two more consumers with
// overlapping interests query simultaneously, and mixedcast serves
// their overlapping demand with shared transmissions.
//
// Run with:
//
//	go run ./examples/airquality
package main

import (
	"fmt"
	"log"
	"time"

	"pds"
)

const (
	rows = 8
	cols = 8
)

func sampleDesc(i int, x, y float64, at int64) pds.Descriptor {
	return pds.NewDescriptor().
		Set(pds.AttrNamespace, pds.String("env")).
		Set(pds.AttrDataType, pds.String("nox")).
		Set(pds.AttrName, pds.String(fmt.Sprintf("sample-%04d", i))).
		Set("x", pds.Float(x)).
		Set("y", pds.Float(y)).
		Set(pds.AttrTime, pds.Int(at))
}

func main() {
	sim := pds.NewGridSim(rows, cols, pds.SimOptions{Seed: 7})

	// Every phone contributes samples taken at its own position over
	// the past hour.
	const baseTime = 1_700_000_000
	total := 0
	for id := 1; id <= rows*cols; id++ {
		n := sim.Node(pds.NodeID(id))
		x := float64((id - 1) % cols * 30)
		y := float64((id - 1) / cols * 30)
		for k := 0; k < 5; k++ {
			at := int64(baseTime + k*600)
			value := fmt.Sprintf("NOx=%dppb", 20+(id*7+k*13)%40)
			n.Publish(sampleDesc(total, x, y, at), []byte(value))
			total++
		}
	}
	fmt.Printf("published %d samples across %d phones\n", total, rows*cols)

	// Consumer 1 wants recent samples from the north-west quadrant.
	sel := pds.NewQuery(
		pds.Eq(pds.AttrNamespace, pds.String("env")),
		pds.Eq(pds.AttrDataType, pds.String("nox")),
		pds.Lt("x", pds.Float(120)),
		pds.Lt("y", pds.Float(120)),
		pds.Ge(pds.AttrTime, pds.Int(baseTime+1200)),
	)
	consumer := sim.Node(pds.NodeID(rows*cols/2 + 4))
	res, ok := consumer.CollectAndWait(sel, 3*time.Minute)
	if !ok {
		log.Fatal("collection did not finish")
	}
	fmt.Printf("consumer collected %d filtered samples in %.1fs over %d rounds\n",
		len(res.Entries), res.Latency.Seconds(), res.Rounds)
	for _, d := range res.Entries[:min(3, len(res.Entries))] {
		fmt.Printf("  %s -> %s\n", d.Name(), res.Payloads[d.Key()])
	}

	// Two more consumers ask simultaneously with overlapping filters:
	// one mixedcast response stream serves entries wanted by both.
	before := sim.OverheadBytes()
	selWide := pds.NewQuery(
		pds.Eq(pds.AttrDataType, pds.String("nox")),
		pds.Lt("x", pds.Float(150)),
	)
	selNarrow := pds.NewQuery(
		pds.Eq(pds.AttrDataType, pds.String("nox")),
		pds.Lt("x", pds.Float(90)),
	)
	results := make([]pds.DiscoveryResult, 2)
	doneCount := 0
	sim.Node(2).Discover(selWide, pds.DiscoverOptions{}, func(r pds.DiscoveryResult) {
		results[0] = r
		doneCount++
	})
	sim.Node(10).Discover(selNarrow, pds.DiscoverOptions{}, func(r pds.DiscoveryResult) {
		results[1] = r
		doneCount++
	})
	sim.RunUntil(sim.Now()+3*time.Minute, func() bool { return doneCount == 2 })
	if doneCount != 2 {
		log.Fatal("simultaneous discoveries did not finish")
	}
	fmt.Printf("simultaneous consumers found %d and %d entries, %.2fMB on air combined\n",
		len(results[0].Entries), len(results[1].Entries),
		float64(sim.OverheadBytes()-before)/1e6)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
