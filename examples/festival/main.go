// Festival: the paper's motivating scenario (§I). A hundred phones at
// an outdoor music festival form a 10×10 simulated mesh. One of them
// recorded a popular 20 MB video clip of a special moment; a consumer
// at the other side of the crowd discovers it and fetches it with
// two-phase Peer Data Retrieval — chunk distribution information
// first, then recursive chunk requests balanced over nearest copies.
// A second consumer then fetches the same clip and benefits from all
// the copies the first transfer left cached along its paths.
//
// Run with:
//
//	go run ./examples/festival
package main

import (
	"fmt"
	"log"
	"time"

	"pds"
)

func main() {
	sim := pds.NewGridSim(10, 10, pds.SimOptions{Seed: 2026})

	// The videographer stands near a corner of the festival ground.
	videographer := sim.Node(1)
	clip := make([]byte, 20<<20)
	for i := range clip {
		clip[i] = byte(i * 2654435761)
	}
	clipDesc := videographer.PublishItem(
		pds.NewDescriptor().
			Set(pds.AttrNamespace, pds.String("media")).
			Set(pds.AttrDataType, pds.String("video")).
			Set(pds.AttrName, pds.String("headliner-finale.mp4")),
		clip, pds.DefaultChunkSize)
	fmt.Printf("published %s: %d chunks of 256KB\n",
		clipDesc.Name(), clipDesc.TotalChunks())

	// A consumer across the field first discovers what is out there...
	consumer := sim.Node(100)
	found, ok := consumer.DiscoverAndWait(
		pds.NewQuery(
			pds.Eq(pds.AttrDataType, pds.String("video")),
			pds.NotExists(pds.AttrChunkID)),
		2*time.Minute)
	if !ok || len(found.Entries) == 0 {
		log.Fatal("discovery failed")
	}
	fmt.Printf("consumer discovered %d video(s) in %.1fs\n",
		len(found.Entries), found.Latency.Seconds())

	// ...then retrieves the clip.
	before := sim.OverheadBytes()
	res, ok := consumer.RetrieveAndWait(found.Entries[0], 20*time.Minute)
	if !ok || !res.Complete {
		log.Fatalf("retrieval failed: complete=%v chunks=%d", res.Complete, len(res.Chunks))
	}
	payload, _ := res.Assemble()
	fmt.Printf("consumer 1: %d bytes in %.1fs (CDI %.1fs), %.1fMB on air\n",
		len(payload), res.Latency.Seconds(), res.CDILatency.Seconds(),
		float64(sim.OverheadBytes()-before)/1e6)

	// A second consumer profits from cached copies along the way.
	second := sim.Node(55)
	before = sim.OverheadBytes()
	res2, ok := second.RetrieveAndWait(found.Entries[0], 20*time.Minute)
	if !ok || !res2.Complete {
		log.Fatal("second retrieval failed")
	}
	fmt.Printf("consumer 2: %.1fs, %.1fMB on air (caching shortened the paths)\n",
		res2.Latency.Seconds(), float64(sim.OverheadBytes()-before)/1e6)
}
