// Quickstart: two in-process PDS nodes share data over the in-memory
// hub. One publishes a sensor reading and a photo; the other discovers
// what exists nearby, collects the small reading and retrieves the
// photo chunk by chunk.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pds"
)

func main() {
	hub := pds.NewChanHub()

	producer, err := pds.NewNode(hub.Attach(), pds.WithNodeID(1))
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()

	consumer, err := pds.NewNode(hub.Attach(), pds.WithNodeID(2))
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()

	// A small sensor sample: descriptor + payload.
	sample := pds.NewDescriptor().
		Set(pds.AttrNamespace, pds.String("env")).
		Set(pds.AttrDataType, pds.String("nox")).
		Set(pds.AttrName, pds.String("sample-001")).
		Set(pds.AttrTime, pds.Time(time.Now()))
	producer.Publish(sample, []byte("NOx=42ppb"))

	// A larger item, split into chunks.
	photo := make([]byte, 300_000)
	for i := range photo {
		photo[i] = byte(i)
	}
	photoDesc := producer.PublishItem(
		pds.NewDescriptor().
			Set(pds.AttrNamespace, pds.String("media")).
			Set(pds.AttrDataType, pds.String("photo")).
			Set(pds.AttrName, pds.String("sunset.jpg")),
		photo, pds.DefaultChunkSize)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// 1. Discover: what exists out there?
	entries, err := consumer.Discover(ctx, pds.NewQuery(
		pds.Exists(pds.AttrName), pds.NotExists(pds.AttrChunkID)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d entries:\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  %s\n", e)
	}

	// 2. Collect the small samples.
	payloads, descs, err := consumer.Collect(ctx, pds.NewQuery(
		pds.Eq(pds.AttrNamespace, pds.String("env")),
		pds.Eq(pds.AttrDataType, pds.String("nox")),
	))
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range descs {
		fmt.Printf("collected %s -> %q\n", d.Name(), payloads[d.Key()])
	}

	// 3. Retrieve the large item with two-phase PDR.
	data, err := consumer.Retrieve(ctx, photoDesc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved %s: %d bytes in %d chunks\n",
		photoDesc.Name(), len(data), photoDesc.TotalChunks())
}
