// Udpmesh: three real-time PDS nodes talking over real UDP sockets on
// the loopback interface, exactly the prototype's transport (§V): every
// frame is a UDP datagram all peers receive; intended receivers are
// named inside the message; the rest overhear and cache.
//
// In a real deployment each node would run on its own device with
// pds.NewUDPTransport(port) broadcasting on the LAN; loopback mode
// emulates that on one machine.
//
// Run with:
//
//	go run ./examples/udpmesh
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pds"
)

func main() {
	ports := []int{29751, 29752, 29753}
	nodes := make([]*pds.Node, len(ports))
	for i, port := range ports {
		tr, err := pds.NewLoopbackTransport(port, ports)
		if err != nil {
			log.Fatalf("bind port %d: %v", port, err)
		}
		n, err := pds.NewNode(tr, pds.WithNodeID(pds.NodeID(i+1)))
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		fmt.Printf("node %d up on 127.0.0.1:%d\n", i+1, port)
	}

	// Node 1 shares its notes; node 2 shares a picture.
	nodes[0].Publish(
		pds.NewDescriptor().
			Set(pds.AttrNamespace, pds.String("docs")).
			Set(pds.AttrDataType, pds.String("note")).
			Set(pds.AttrName, pds.String("meeting-notes.txt")),
		[]byte("agenda: peer data sharing rollout"))

	picture := make([]byte, 64_000)
	for i := range picture {
		picture[i] = byte(i % 253)
	}
	picDesc := nodes[1].PublishItem(
		pds.NewDescriptor().
			Set(pds.AttrNamespace, pds.String("media")).
			Set(pds.AttrDataType, pds.String("photo")).
			Set(pds.AttrName, pds.String("whiteboard.png")),
		picture, 16_384)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Node 3 discovers everything shared nearby.
	entries, err := nodes[2].Discover(ctx, pds.NewQuery(
		pds.Exists(pds.AttrName), pds.NotExists(pds.AttrChunkID)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 3 discovered %d shared items:\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  %s/%s %s\n", e.Namespace(), e.DataType(), e.Name())
	}

	// It collects the note...
	payloads, descs, err := nodes[2].Collect(ctx, pds.NewQuery(
		pds.Eq(pds.AttrDataType, pds.String("note"))))
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range descs {
		fmt.Printf("note %q: %s\n", d.Name(), payloads[d.Key()])
	}

	// ...and retrieves the picture, fragmented over many datagrams and
	// reassembled with per-fragment ack/retransmission.
	data, err := nodes[2].Retrieve(ctx, picDesc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("picture %q retrieved: %d bytes over UDP\n", picDesc.Name(), len(data))
}
