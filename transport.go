package pds

import (
	"sync"
	"time"

	"pds/internal/face"
	"pds/internal/udptransport"
	"pds/internal/wire"
)

// udpAdapter narrows udptransport.Transport to the Transport interface
// (the underlying type already matches; this keeps the coupling
// explicit and compile-checked).
type udpAdapter struct {
	*udptransport.Transport
}

var _ Transport = udpAdapter{}

func (u udpAdapter) Send(msg *Message) bool        { return u.Transport.Send(msg) }
func (u udpAdapter) SetReceiver(fn func(*Message)) { u.Transport.SetReceiver(fn) }

// NewUDPTransport opens a broadcast-mode UDP transport on the port:
// all peers on the same LAN segment and port form a one-hop PDS
// neighborhood, exactly like the paper's prototype (§V).
func NewUDPTransport(port int) (Transport, error) {
	t, err := udptransport.New(udptransport.DefaultConfig(port))
	if err != nil {
		return nil, err
	}
	return udpAdapter{t}, nil
}

// NewLoopbackTransport opens a loopback-mode UDP transport for running
// several nodes on one machine: the node listens on ownPort and fans
// every frame out to peerPorts. Overhearing works exactly as on a real
// broadcast medium — every peer sees every frame.
func NewLoopbackTransport(ownPort int, peerPorts []int) (Transport, error) {
	t, err := udptransport.New(udptransport.LoopbackConfig(ownPort, peerPorts))
	if err != nil {
		return nil, err
	}
	return udpAdapter{t}, nil
}

// EdgeDialer is implemented by transports that can grow unicast
// adjacencies at runtime (the face mesh). The tiered retrieval path
// uses it to dial tracker-learned edge peers mid-retrieval.
type EdgeDialer interface {
	// AddPeer starts a supervised face to addr; false when already
	// configured or the transport is closed.
	AddPeer(addr string) bool
}

// readyWaiter is implemented by transports whose adjacencies take time
// to come up (the face mesh dials and exchanges hellos).
type readyWaiter interface {
	WaitReady(n int, timeout time.Duration) bool
	UpCount() int
}

// FaceMesh is the supervised unicast transport plane: TCP faces with
// dial-retry backoff, heartbeats and circuit breakers behind the same
// Transport surface. See internal/face for the full API (peer
// management, stats); the value returned by NewFaceTransport can be
// asserted to it in-module.
type FaceMesh = face.Mesh

// FaceConfig configures a face mesh transport.
type FaceConfig = face.Config

// DefaultFaceConfig returns production face-mesh settings listening on
// addr ("" = dial-only).
func DefaultFaceConfig(addr string) FaceConfig { return face.DefaultConfig(addr) }

// NewFaceTransport opens a supervised TCP unicast mesh: it listens on
// cfg.ListenAddr (when set) and supervises a dialed face to every
// peer address. The mesh fans each frame out to all up faces, so the
// protocol's broadcast-shaped behaviors — overhearing, lingering
// queries, Bloom rewriting — run unchanged over unicast.
func NewFaceTransport(cfg FaceConfig, peerAddrs ...string) (*FaceMesh, error) {
	m, err := face.NewMesh(cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range peerAddrs {
		m.AddPeer(a)
	}
	return m, nil
}

var _ Transport = (*FaceMesh)(nil)
var _ EdgeDialer = (*FaceMesh)(nil)
var _ readyWaiter = (*FaceMesh)(nil)

// ChanHub is an in-process broadcast hub connecting nodes without
// sockets; useful in tests and single-process demos. Create one hub
// and Attach each node. Delivery is asynchronous through a per-member
// queue: a node processing a frame (under its own lock) can trigger
// sends that loop back to it without deadlocking.
type ChanHub struct {
	mu      sync.Mutex
	members []*chanMember
}

type chanMember struct {
	hub    *ChanHub
	inbox  chan *wire.Message
	done   chan struct{}
	closed sync.Once

	mu   sync.Mutex
	recv func(*wire.Message)
}

// NewChanHub returns an empty in-process broadcast hub.
func NewChanHub() *ChanHub { return &ChanHub{} }

// Attach adds a member; every frame any member sends is delivered to
// all other members in order, each on its own pump goroutine.
func (h *ChanHub) Attach() Transport {
	m := &chanMember{
		hub:   h,
		inbox: make(chan *wire.Message, 1024),
		done:  make(chan struct{}),
	}
	go m.pump()
	h.mu.Lock()
	h.members = append(h.members, m)
	h.mu.Unlock()
	return m
}

func (m *chanMember) pump() {
	for {
		select {
		case msg := <-m.inbox:
			m.mu.Lock()
			recv := m.recv
			m.mu.Unlock()
			if recv != nil {
				recv(msg)
			}
		case <-m.done:
			return
		}
	}
}

// Send fans the frame out to every other member. All receivers get the
// same *wire.Message: transmitted frames are frozen (see wire.Message's
// ownership rules), so sharing one pointer across inboxes is safe and
// mirrors what a real broadcast medium does — every radio hears the
// same bits.
func (m *chanMember) Send(msg *wire.Message) bool {
	m.hub.mu.Lock()
	members := append([]*chanMember(nil), m.hub.members...)
	m.hub.mu.Unlock()
	ok := true
	for _, other := range members {
		if other == m {
			continue
		}
		select {
		case other.inbox <- msg:
		default:
			ok = false // receiver overloaded: frame dropped, like a full buffer
		}
	}
	return ok
}

func (m *chanMember) SetReceiver(fn func(*wire.Message)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recv = fn
}

func (m *chanMember) Close() error {
	m.closed.Do(func() { close(m.done) })
	m.SetReceiver(nil)
	return nil
}
