package pds

import (
	"sync"

	"pds/internal/udptransport"
	"pds/internal/wire"
)

// udpAdapter narrows udptransport.Transport to the Transport interface
// (the underlying type already matches; this keeps the coupling
// explicit and compile-checked).
type udpAdapter struct {
	*udptransport.Transport
}

var _ Transport = udpAdapter{}

func (u udpAdapter) Send(msg *Message) bool        { return u.Transport.Send(msg) }
func (u udpAdapter) SetReceiver(fn func(*Message)) { u.Transport.SetReceiver(fn) }

// NewUDPTransport opens a broadcast-mode UDP transport on the port:
// all peers on the same LAN segment and port form a one-hop PDS
// neighborhood, exactly like the paper's prototype (§V).
func NewUDPTransport(port int) (Transport, error) {
	t, err := udptransport.New(udptransport.DefaultConfig(port))
	if err != nil {
		return nil, err
	}
	return udpAdapter{t}, nil
}

// NewLoopbackTransport opens a loopback-mode UDP transport for running
// several nodes on one machine: the node listens on ownPort and fans
// every frame out to peerPorts. Overhearing works exactly as on a real
// broadcast medium — every peer sees every frame.
func NewLoopbackTransport(ownPort int, peerPorts []int) (Transport, error) {
	t, err := udptransport.New(udptransport.LoopbackConfig(ownPort, peerPorts))
	if err != nil {
		return nil, err
	}
	return udpAdapter{t}, nil
}

// ChanHub is an in-process broadcast hub connecting nodes without
// sockets; useful in tests and single-process demos. Create one hub
// and Attach each node. Delivery is asynchronous through a per-member
// queue: a node processing a frame (under its own lock) can trigger
// sends that loop back to it without deadlocking.
type ChanHub struct {
	mu      sync.Mutex
	members []*chanMember
}

type chanMember struct {
	hub    *ChanHub
	inbox  chan *wire.Message
	done   chan struct{}
	closed sync.Once

	mu   sync.Mutex
	recv func(*wire.Message)
}

// NewChanHub returns an empty in-process broadcast hub.
func NewChanHub() *ChanHub { return &ChanHub{} }

// Attach adds a member; every frame any member sends is delivered to
// all other members in order, each on its own pump goroutine.
func (h *ChanHub) Attach() Transport {
	m := &chanMember{
		hub:   h,
		inbox: make(chan *wire.Message, 1024),
		done:  make(chan struct{}),
	}
	go m.pump()
	h.mu.Lock()
	h.members = append(h.members, m)
	h.mu.Unlock()
	return m
}

func (m *chanMember) pump() {
	for {
		select {
		case msg := <-m.inbox:
			m.mu.Lock()
			recv := m.recv
			m.mu.Unlock()
			if recv != nil {
				recv(msg)
			}
		case <-m.done:
			return
		}
	}
}

// Send fans the frame out to every other member. All receivers get the
// same *wire.Message: transmitted frames are frozen (see wire.Message's
// ownership rules), so sharing one pointer across inboxes is safe and
// mirrors what a real broadcast medium does — every radio hears the
// same bits.
func (m *chanMember) Send(msg *wire.Message) bool {
	m.hub.mu.Lock()
	members := append([]*chanMember(nil), m.hub.members...)
	m.hub.mu.Unlock()
	ok := true
	for _, other := range members {
		if other == m {
			continue
		}
		select {
		case other.inbox <- msg:
		default:
			ok = false // receiver overloaded: frame dropped, like a full buffer
		}
	}
	return ok
}

func (m *chanMember) SetReceiver(fn func(*wire.Message)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recv = fn
}

func (m *chanMember) Close() error {
	m.closed.Do(func() { close(m.done) })
	m.SetReceiver(nil)
	return nil
}
