package pds

// One benchmark per table/figure of the paper's evaluation. Each
// iteration runs the figure's experiment on the deterministic simulator
// and reports the §VI-A metrics (recall, latency in virtual seconds,
// overhead in MB) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in summary form. The benchmarks use
// one run per point and scaled-down item sizes to keep wall time
// tolerable; cmd/pds-bench runs the full-size versions and prints the
// complete series.

import (
	"testing"

	"pds/internal/metrics"
	"pds/internal/mobility"
	"pds/internal/scenario"
)

// reportSeries condenses a series into benchmark metrics: the first and
// last points' recall/latency/overhead (enough to see level and trend).
func reportSeries(b *testing.B, s *metrics.Series, prefix string) {
	b.Helper()
	if len(s.Points) == 0 {
		return
	}
	first, last := s.Points[0].Sample, s.Points[len(s.Points)-1].Sample
	b.ReportMetric(first.Recall, prefix+"recall_first")
	b.ReportMetric(last.Recall, prefix+"recall_last")
	b.ReportMetric(first.Latency.Seconds(), prefix+"lat_s_first")
	b.ReportMetric(last.Latency.Seconds(), prefix+"lat_s_last")
	b.ReportMetric(float64(first.OverheadBytes)/1e6, prefix+"ovh_MB_first")
	b.ReportMetric(float64(last.OverheadBytes)/1e6, prefix+"ovh_MB_last")
}

// BenchmarkFig03SingleHopReception regenerates Figure 3: reception of
// raw UDP vs leaky bucket vs bucket+ack at 1–4 concurrent senders.
func BenchmarkFig03SingleHopReception(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.Fig03SingleHopReception(1, 1)
		if i == 0 {
			b.ReportMetric(series[0].Points[3].Sample.Recall, "raw_recall_4snd")
			b.ReportMetric(series[1].Points[3].Sample.Recall, "bucket_recall_4snd")
			b.ReportMetric(series[2].Points[3].Sample.Recall, "ack_recall_4snd")
		}
	}
}

// BenchmarkTabLeakyBucketSweep regenerates the §V-2 LeakingRate sweep.
func BenchmarkTabLeakyBucketSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.TabLeakyBucketSweep(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkTabAckSweep regenerates the §V-1 RetrTimeout/MaxRetrTime
// sweeps.
func BenchmarkTabAckSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.TabAckSweep(1, 1)
		if i == 0 {
			reportSeries(b, series[0], "timeout_")
			reportSeries(b, series[1], "retries_")
		}
	}
}

// BenchmarkFig04SaturationSweep regenerates the §VI-B saturation
// observation (single-round no-ack recall vs metadata amount).
func BenchmarkFig04SaturationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.SaturationSweep(1, 1)
		if i == 0 {
			reportSeries(b, series[0], "red1_")
			reportSeries(b, series[1], "red2_")
		}
	}
}

// BenchmarkFig04HopCount regenerates Figure 4: single-round PDD vs max
// hop count.
func BenchmarkFig04HopCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig04HopCount(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig05MultiRound regenerates Figure 5: recall vs T and T_d.
func BenchmarkFig05MultiRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.Fig05MultiRound(1, 1)
		if i == 0 {
			reportSeries(b, series[0], "td0_")
			reportSeries(b, series[len(series)-1], "td3_")
		}
	}
}

// BenchmarkFig06MetadataAmount regenerates Figure 6: PDD vs metadata
// amount 5k–20k.
func BenchmarkFig06MetadataAmount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig06MetadataAmount(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig07SequentialConsumers regenerates Figure 7.
func BenchmarkFig07SequentialConsumers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig07SequentialConsumers(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig08SimultaneousConsumers regenerates Figure 8.
func BenchmarkFig08SimultaneousConsumers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig08SimultaneousConsumers(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig09Fig10MobilityPDD regenerates Figures 9/10: PDD under
// Student Center mobility, rates ×0.5–×2.
func BenchmarkFig09Fig10MobilityPDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig0910MobilityPDD(mobility.StudentCenter(), 1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig11DataItemSize regenerates Figure 11: PDR vs item size
// 1–20 MB.
func BenchmarkFig11DataItemSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig11DataItemSize(1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig12MobilityPDR regenerates Figure 12 (5 MB item to bound
// bench time; pds-bench runs 20 MB).
func BenchmarkFig12MobilityPDR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig12MobilityPDR(mobility.StudentCenter(), 5, 1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig13Fig14Redundancy regenerates Figures 13/14: PDR vs MDR
// across chunk redundancy (5 MB item here; pds-bench runs 20 MB).
func BenchmarkFig13Fig14Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.Fig1314Redundancy(5, 1, 1)
		if i == 0 {
			reportSeries(b, series[0], "pdr_")
			reportSeries(b, series[1], "mdr_")
		}
	}
}

// BenchmarkFig15PDRSequential regenerates Figure 15 (5 MB item).
func BenchmarkFig15PDRSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig15PDRSequential(5, 1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkFig16PDRSimultaneous regenerates Figure 16 (5 MB item).
func BenchmarkFig16PDRSimultaneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := scenario.Fig16PDRSimultaneous(5, 1, 1)
		if i == 0 {
			reportSeries(b, s, "")
		}
	}
}

// BenchmarkAblationOneShotInterest measures PDD with lingering queries
// disabled (CCN/NDN-style one-shot Interests) against the baseline.
func BenchmarkAblationOneShotInterest(b *testing.B) {
	benchAblation(b, "one-shot interests")
}

// BenchmarkAblationNoMixedcast measures PDD with mixedcast joining
// disabled (one response per matching query).
func BenchmarkAblationNoMixedcast(b *testing.B) {
	benchAblation(b, "no mixedcast")
}

// BenchmarkAblationNoRewrite measures PDD without Bloom-filter
// redundancy detection and en-route rewriting.
func BenchmarkAblationNoRewrite(b *testing.B) {
	benchAblation(b, "no bloom rewrite")
}

func benchAblation(b *testing.B, variant string) {
	b.Helper()
	// 800 entries keep the slow variants (no-Bloom deliberately floods)
	// within benchmark budgets; pds-bench ablation runs the full load.
	for i := 0; i < b.N; i++ {
		base := scenario.AblationOne("baseline", 800, 1, 1)
		ablated := scenario.AblationOne(variant, 800, 1, 1)
		if i == 0 {
			reportSeries(b, base, "base_")
			reportSeries(b, ablated, "ablated_")
		}
	}
}

// BenchmarkAblationNearestOnly measures PDR with the min-max load
// balancing of §IV-B replaced by always-nearest assignment.
func BenchmarkAblationNearestOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := scenario.AblationNearestOnly(5, 1, 1)
		if i == 0 {
			reportSeries(b, series[0], "balanced_")
			reportSeries(b, series[1], "nearest_")
		}
	}
}
