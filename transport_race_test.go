package pds

import (
	"sync"
	"sync/atomic"
	"testing"

	"pds/internal/attr"
	"pds/internal/bloom"
	"pds/internal/wire"
)

// TestChanHubSharedMessageConcurrent hammers one shared message through
// many concurrent ChanHub members. The hub delivers the same
// *wire.Message pointer to every member (no per-receiver clone), so
// this test — run under -race by `make verify` — proves the read-only
// delivery contract holds: concurrent receivers reading every section
// of a shared frame while senders keep broadcasting it is data-race
// free.
func TestChanHubSharedMessageConcurrent(t *testing.T) {
	const members = 8
	const sends = 50

	f := bloom.NewForCapacity(128, 0.01, 42)
	f.Add("alpha")
	f.Add("beta")
	shared := &wire.Message{
		Type:       wire.TypeQuery,
		TransmitID: 7,
		From:       1,
		Query: &wire.Query{
			ID:        99,
			Kind:      wire.KindMetadata,
			Sender:    1,
			Receivers: []wire.NodeID{2, 3, 4},
			Origin:    1,
			Sel:       attr.NewQuery(attr.Eq("class", attr.String("entry"))),
			Item:      attr.NewDescriptor().Set("name", attr.String("item")),
			ChunkIDs:  []int{1, 2, 3},
			Bloom:     f,
		},
	}

	hub := NewChanHub()
	var delivered atomic.Int64
	var sum atomic.Int64
	ports := make([]Transport, members)
	for i := range ports {
		ports[i] = hub.Attach()
		ports[i].SetReceiver(func(m *wire.Message) {
			// Read every shared section, racing against all other
			// receivers doing the same on the same pointer.
			n := int64(len(m.Query.Receivers) + len(m.Query.ChunkIDs))
			if m.Query.Bloom.Contains("alpha") {
				n++
			}
			if m.Query.Sel.Match(m.Query.Item) {
				n++
			}
			sum.Add(n)
			delivered.Add(1)
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for s := 0; s < sends; s++ {
				ports[i].Send(shared)
			}
		}(i)
	}
	wg.Wait()
	for _, p := range ports {
		p.(interface{ Close() error }).Close()
	}
	if delivered.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	if sum.Load() == 0 {
		t.Fatal("receivers read nothing")
	}
}
